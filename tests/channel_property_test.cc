// Property tests for the (1, m) broadcast channel: random configurations
// and random (valid) probe traces must respect the protocol's physical
// invariants.

#include <algorithm>
#include <cmath>
#include <limits>

#include "broadcast/channel.h"
#include "common/rng.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

class ChannelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelPropertyTest, RandomTracesRespectInvariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    ChannelOptions opt;
    opt.packet_capacity = static_cast<int>(rng.UniformInt(32, 2048));
    opt.m = static_cast<int>(rng.UniformInt(0, 6));  // 0 = optimal
    const int regions = static_cast<int>(rng.UniformInt(1, 200));
    const int index_packets = static_cast<int>(rng.UniformInt(0, 300));
    auto ch_r = BroadcastChannel::Create(index_packets, regions, opt);
    ASSERT_TRUE(ch_r.ok()) << ch_r.status().ToString();
    const BroadcastChannel& ch = ch_r.value();

    // Layout invariants.
    ASSERT_GE(ch.m(), 1);
    ASSERT_LE(ch.m(), regions);
    ASSERT_EQ(ch.cycle_packets(),
              ch.data_packets() +
                  static_cast<int64_t>(ch.m()) * ch.index_packets());
    int64_t prev_start = -1;
    for (int j = 0; j < ch.m(); ++j) {
      const int64_t s = ch.IndexSegmentStart(j);
      ASSERT_GT(s, prev_start);
      ASSERT_LT(s, ch.cycle_packets());
      prev_start = s;
    }
    for (int r = 0; r < regions; ++r) {
      const int64_t b = ch.BucketStart(r);
      ASSERT_GE(b, 0);
      ASSERT_LE(b + ch.bucket_packets(), ch.cycle_packets());
      if (r > 0) {
        ASSERT_GT(b, ch.BucketStart(r - 1));
      }
    }

    // Random queries with random (possibly backward) traces.
    for (int q = 0; q < 40; ++q) {
      ProbeTrace trace;
      trace.region = static_cast<int>(rng.UniformInt(0, regions - 1));
      const int hops = static_cast<int>(
          rng.UniformInt(0, std::min(index_packets, 20)));
      int prev = -1;
      for (int h = 0; h < hops; ++h) {
        int id = static_cast<int>(rng.UniformInt(0, index_packets - 1));
        if (id == prev) continue;  // traces never re-read in place
        trace.packets.push_back(id);
        prev = id;
      }
      const double arrival =
          rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
      auto out_r = ch.Simulate(trace, arrival);
      ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
      const auto& out = out_r.value();
      // Latency at least covers reading the bucket after the probe packet.
      EXPECT_GE(out.latency, ch.bucket_packets());
      EXPECT_EQ(out.tuning_probe, 1);
      EXPECT_EQ(out.tuning_index, static_cast<int>(trace.packets.size()));
      EXPECT_EQ(out.tuning_data, ch.bucket_packets());
      // Tuning never exceeds the time spent listening.
      EXPECT_LE(out.tuning_total(), out.latency + 1.0);
      // A client can always be served within (index hops + 3) cycles.
      EXPECT_LE(out.latency,
                static_cast<double>(ch.cycle_packets()) *
                    (trace.packets.size() + 3.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(ChannelPropertyTest, ForwardTraceWithinTwoCycles) {
  // Forward-only traces (every real tree index) complete within two
  // cycles: one to reach the next index, one to reach the data.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    ChannelOptions opt;
    opt.packet_capacity = 256;
    opt.m = static_cast<int>(rng.UniformInt(1, 4));
    const int regions = static_cast<int>(rng.UniformInt(2, 100));
    const int index_packets = static_cast<int>(rng.UniformInt(1, 60));
    auto ch_r = BroadcastChannel::Create(index_packets, regions, opt);
    ASSERT_TRUE(ch_r.ok());
    const BroadcastChannel& ch = ch_r.value();
    ProbeTrace trace;
    trace.region = static_cast<int>(rng.UniformInt(0, regions - 1));
    int id = 0;
    while (id < index_packets) {
      trace.packets.push_back(id);
      id += static_cast<int>(rng.UniformInt(1, 5));
    }
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    auto out_r = ch.Simulate(trace, arrival);
    ASSERT_TRUE(out_r.ok());
    EXPECT_LE(out_r.value().latency,
              2.0 * static_cast<double>(ch.cycle_packets()) + 1.0);
  }
}

TEST(ChannelPropertyTest, NoIndexWorseOnAverageTuning) {
  // Averaged over arrivals, listening without an index costs about half a
  // data cycle of tuning — the baseline air indexing exists to beat.
  ChannelOptions opt;
  opt.packet_capacity = 1024;
  opt.m = 1;
  auto ch_r = BroadcastChannel::Create(10, 50, opt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  Rng rng(5);
  double total = 0.0;
  const int kQueries = 5000;
  for (int q = 0; q < kQueries; ++q) {
    const int region = static_cast<int>(rng.UniformInt(0, 49));
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    total += ch.SimulateNoIndex(region, arrival).tuning_total();
  }
  const double mean = total / kQueries;
  EXPECT_NEAR(mean, ch.data_packets() / 2.0, ch.data_packets() * 0.05);
}

TEST(ChannelPropertyTest, SimulateRejectsArrivalsOutsideTheCycle) {
  // Pinned choice for the documented precondition arrival in [0, cycle):
  // out-of-range and non-finite arrivals are InvalidArgument, never
  // silently computed. NaN is the sharp edge — it compares false against
  // both bounds, so only an explicit finiteness check catches it.
  ChannelOptions opt;
  opt.packet_capacity = 256;
  opt.m = 2;
  auto ch_r = BroadcastChannel::Create(8, 20, opt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  ProbeTrace trace;
  trace.region = 3;
  trace.packets = {0, 4};
  const double cycle = static_cast<double>(ch.cycle_packets());
  const double bad[] = {-1.0,
                        -1e-9,
                        cycle,
                        cycle + 0.5,
                        2.0 * cycle,
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::quiet_NaN()};
  for (double arrival : bad) {
    auto out_r = ch.Simulate(trace, arrival);
    ASSERT_FALSE(out_r.ok()) << "arrival=" << arrival;
    EXPECT_EQ(out_r.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundary cases inside the cycle remain valid.
  EXPECT_TRUE(ch.Simulate(trace, 0.0).ok());
  EXPECT_TRUE(ch.Simulate(trace, std::nextafter(cycle, 0.0)).ok());
}

TEST(ChannelPropertyTest, NoIndexWrapsArrivalModPureDataCycle) {
  // SimulateNoIndex's pinned choice: absolute arrivals are canonically
  // wrapped mod the pure-data cycle, so every field is bit-identical to
  // the in-cycle arrival's outcome.
  ChannelOptions opt;
  opt.packet_capacity = 512;
  opt.m = 3;
  auto ch_r = BroadcastChannel::Create(6, 40, opt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  const double data_cycle = static_cast<double>(ch.data_packets());
  Rng rng(91);
  for (int q = 0; q < 200; ++q) {
    const int region = static_cast<int>(rng.UniformInt(0, 39));
    // Snap the fractional part to a 1/1024 grid so a + k*data_cycle is
    // exactly representable and fmod recovers `a` bit-for-bit. (For a
    // full-precision mantissa the sum itself rounds, which is a property
    // of the caller's arithmetic, not of the wrap.)
    const double a =
        std::floor(rng.Uniform(0.0, data_cycle) * 1024.0) / 1024.0;
    const auto base = ch.SimulateNoIndex(region, a);
    for (int k : {1, 2, 7}) {
      const auto wrapped = ch.SimulateNoIndex(region, a + k * data_cycle);
      EXPECT_EQ(base.latency, wrapped.latency);
      EXPECT_EQ(base.tuning_index, wrapped.tuning_index);
      EXPECT_EQ(base.tuning_data, wrapped.tuning_data);
      EXPECT_EQ(base.retries, wrapped.retries);
    }
  }
}

TEST(ChannelPropertyTest, NoIndexZeroLossRateMatchesLosslessBitForBit) {
  // The loss-0 guarantee of the lossy no-index baseline: enabling a fault
  // model that never fires must not move a single bit (the lossless fast
  // path constructs no RNG at all).
  ChannelOptions lossless_opt;
  lossless_opt.packet_capacity = 256;
  lossless_opt.m = 2;
  auto lossless_r = BroadcastChannel::Create(8, 30, lossless_opt);
  ASSERT_TRUE(lossless_r.ok());
  ChannelOptions zero_opt = lossless_opt;
  zero_opt.loss.model = LossModel::kIid;
  zero_opt.loss.loss_rate = 0.0;
  zero_opt.loss.seed = 99;
  auto zero_r = BroadcastChannel::Create(8, 30, zero_opt);
  ASSERT_TRUE(zero_r.ok());
  Rng rng(17);
  for (int q = 0; q < 300; ++q) {
    const int region = static_cast<int>(rng.UniformInt(0, 29));
    const double arrival = rng.Uniform(
        0.0, static_cast<double>(lossless_r.value().cycle_packets()));
    const uint64_t stream = static_cast<uint64_t>(q);
    const auto a = lossless_r.value().SimulateNoIndex(region, arrival,
                                                      stream);
    const auto b = zero_r.value().SimulateNoIndex(region, arrival, stream);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.tuning_index, b.tuning_index);
    EXPECT_EQ(a.tuning_data, b.tuning_data);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(b.lost_packets, 0);
    EXPECT_FALSE(b.unrecoverable);
  }
}

TEST(ChannelPropertyTest, NoIndexUnderLossRetriesAndStaysConsistent) {
  // Under real loss the indexless baseline pays for failed buckets with
  // whole extra data cycles; the outcome obeys the same accounting
  // invariants as the indexed ladder and is a pure function of
  // (region, arrival, loss_stream).
  ChannelOptions opt;
  opt.packet_capacity = 64;  // multi-packet buckets: loss can hit mid-bucket
  opt.m = 2;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.3;
  opt.loss.seed = 5;
  opt.loss.max_retries = 6;
  auto ch_r = BroadcastChannel::Create(8, 25, opt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  Rng rng(33);
  int64_t total_retries = 0;
  for (int q = 0; q < 500; ++q) {
    const int region = static_cast<int>(rng.UniformInt(0, 24));
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.data_packets()));
    const uint64_t stream = static_cast<uint64_t>(q);
    const auto out = ch.SimulateNoIndex(region, arrival, stream);
    const auto replay = ch.SimulateNoIndex(region, arrival, stream);
    EXPECT_EQ(out.latency, replay.latency);  // deterministic replay
    EXPECT_EQ(out.retries, replay.retries);
    EXPECT_EQ(out.tuning_probe, 0);
    EXPECT_GE(out.retries, 0);
    EXPECT_LE(out.retries, opt.loss.max_retries);
    EXPECT_GE(out.tuning_data, 1);
    EXPECT_LE(out.tuning_data, (opt.loss.max_retries + 1) * ch.bucket_packets());
    EXPECT_GE(out.lost_packets, out.retries);
    // Tuning never exceeds the time spent listening.
    EXPECT_LE(out.tuning_total(), out.latency + 1.0);
    if (out.unrecoverable) {
      EXPECT_EQ(out.retries, opt.loss.max_retries);
      EXPECT_EQ(out.give_up, GiveUpStage::kRetryBudget);
    } else {
      EXPECT_EQ(out.give_up, GiveUpStage::kNone);
    }
    total_retries += out.retries;
  }
  // At 30% packet loss some bucket retrievals must have failed.
  EXPECT_GT(total_retries, 0);

  // Loss rate 1 burns the whole budget: every query is unrecoverable.
  ChannelOptions sure = opt;
  sure.loss.loss_rate = 1.0;
  auto sure_r = BroadcastChannel::Create(8, 25, sure);
  ASSERT_TRUE(sure_r.ok());
  const auto dead = sure_r.value().SimulateNoIndex(7, 100.5, 3);
  EXPECT_TRUE(dead.unrecoverable);
  EXPECT_EQ(dead.give_up, GiveUpStage::kRetryBudget);
  EXPECT_EQ(dead.retries, sure.loss.max_retries);
}

}  // namespace
}  // namespace dtree::bcast
