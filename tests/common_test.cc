// Tests for the common substrate: Status/Result, byte serialization, RNG.

#include <set>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/status.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kDataLoss}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fail_through = []() -> Status {
    DTREE_RETURN_IF_ERROR(Status::NotFound("missing"));
    return Status::OK();
  };
  EXPECT_EQ(fail_through().code(), StatusCode::kNotFound);
  auto pass_through = []() -> Status {
    DTREE_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(pass_through().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::OutOfRange("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(BytesTest, RoundTripAllWidths) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutF32(3.25f);
  w.PutF32(-1e-8f);
  EXPECT_EQ(w.size(), 1u + 2u + 4u + 4u + 4u);
  const std::vector<uint8_t> buf = w.Release();
  ByteReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  float f1, f2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadF32(&f1).ok());
  ASSERT_TRUE(r.ReadF32(&f2).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(f1, 3.25f);
  EXPECT_EQ(f2, -1e-8f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.PutU16(0x0102);
  w.PutU32(0x03040506u);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x02);
  EXPECT_EQ(b[1], 0x01);
  EXPECT_EQ(b[2], 0x06);
  EXPECT_EQ(b[5], 0x03);
}

TEST(BytesTest, ReadPastEndFails) {
  ByteWriter w;
  w.PutU16(7);
  const std::vector<uint8_t> buf = w.bytes();
  ByteReader r(buf);
  uint32_t u32;
  EXPECT_EQ(r.ReadU32(&u32).code(), StatusCode::kOutOfRange);
  uint16_t u16;
  // The failed read consumed nothing: the u16 is still there.
  EXPECT_TRUE(r.ReadU16(&u16).ok());
  EXPECT_EQ(u16, 7);
  uint8_t u8;
  EXPECT_EQ(r.ReadU8(&u8).code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, CheckedU16NarrowingAtTheBoundary) {
  ByteWriter w;
  EXPECT_TRUE(w.PutU16Checked(0, "zero").ok());
  EXPECT_TRUE(w.PutU16Checked(0xffff, "max").ok());  // largest value that fits
  EXPECT_EQ(w.size(), 4u);
  // One past the boundary: rejected and nothing written — the old bare
  // static_cast would have silently truncated 0x10000 to 0.
  const Status s = w.PutU16Checked(0x10000, "node id");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("node id"), std::string::npos);
  EXPECT_EQ(w.size(), 4u);
  ByteReader r(w.bytes());
  uint16_t a, b;
  ASSERT_TRUE(r.ReadU16(&a).ok());
  ASSERT_TRUE(r.ReadU16(&b).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0xffffu);
}

TEST(Crc32Test, KnownVectors) {
  // CRC-32/ISO-HDLC check value: crc32("123456789") == 0xcbf43926.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check, sizeof(check)), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const std::vector<uint8_t> zeros(4, 0);
  EXPECT_EQ(Crc32(zeros), 0x2144df1cu);  // crc32 of four zero bytes
  // Any single-byte change must alter the checksum.
  std::vector<uint8_t> tweaked = zeros;
  tweaked[2] = 1;
  EXPECT_NE(Crc32(tweaked), Crc32(zeros));
}

TEST(RngTest, MixStreamDecorrelatesAdjacentStreams) {
  // Adjacent (seed, stream) pairs must land far apart; equal inputs agree.
  EXPECT_EQ(Rng::MixStream(42, 7), Rng::MixStream(42, 7));
  std::set<uint64_t> keys;
  for (uint64_t s = 0; s < 100; ++s) {
    keys.insert(Rng::MixStream(42, s));
    keys.insert(Rng::MixStream(43, s));
  }
  EXPECT_EQ(keys.size(), 200u);
}

TEST(RngTest, DeterministicStreams) {
  Rng a(9), b(9), c(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  }
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) != c.UniformInt(0, 1 << 30)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
    const int64_t k = rng.UniformInt(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(12);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  EXPECT_EQ(std::set<int>(v.begin(), v.end()).size(), 50u);
}

}  // namespace
}  // namespace dtree
