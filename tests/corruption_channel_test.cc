// Tests for the bit-corruption fault layer and the degradation ladder in
// BroadcastChannel::Simulate: corruption options validation, the
// determinism contracts (corruption rate 0 reproduces today's outcomes
// bit-for-bit, results independent of thread count), the retry -> re-tune
// -> fallback-linear-scan ladder, and the trace events that mirror it.

#include <cmath>
#include <cstdint>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/experiment.h"
#include "broadcast/loss.h"
#include "broadcast/trace.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

BroadcastChannel MakeChannel(const LossOptions& loss) {
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  o.m = 2;
  o.loss = loss;
  auto ch = BroadcastChannel::Create(/*index_packets=*/2, /*num_regions=*/4,
                                     o);
  EXPECT_TRUE(ch.ok()) << ch.status().ToString();
  return std::move(ch).value();
}

ProbeTrace MakeTrace() {
  ProbeTrace t;
  t.region = 2;
  t.packets = {0, 1};
  return t;
}

void ExpectSameOutcome(const BroadcastChannel::QueryOutcome& a,
                       const BroadcastChannel::QueryOutcome& b) {
  EXPECT_EQ(a.latency, b.latency);  // bitwise, not approximate
  EXPECT_EQ(a.tuning_probe, b.tuning_probe);
  EXPECT_EQ(a.tuning_index, b.tuning_index);
  EXPECT_EQ(a.tuning_data, b.tuning_data);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.corrupted_packets, b.corrupted_packets);
  EXPECT_EQ(a.fallback_scan, b.fallback_scan);
  EXPECT_EQ(a.unrecoverable, b.unrecoverable);
  EXPECT_EQ(a.give_up, b.give_up);
}

TEST(CorruptionOptionsTest, ValidatesRanges) {
  CorruptionOptions ok;
  EXPECT_TRUE(ValidateCorruptionOptions(ok).ok());  // kNone
  ok.model = CorruptionModel::kIidBits;
  ok.bit_error_rate = 1e-4;
  EXPECT_TRUE(ValidateCorruptionOptions(ok).ok());

  CorruptionOptions bad = ok;
  bad.bit_error_rate = -1e-9;
  EXPECT_FALSE(ValidateCorruptionOptions(bad).ok());
  bad.bit_error_rate = 1.5;
  EXPECT_FALSE(ValidateCorruptionOptions(bad).ok());
  bad.bit_error_rate = std::nan("");
  EXPECT_FALSE(ValidateCorruptionOptions(bad).ok());

  bad = CorruptionOptions{};
  bad.model = CorruptionModel::kBurstBits;
  bad.p_good_to_bad = 0.0;
  bad.p_bad_to_good = 0.0;  // absorbing chain: no stationary distribution
  EXPECT_FALSE(ValidateCorruptionOptions(bad).ok());
  bad.p_bad_to_good = 0.5;
  bad.ber_bad = 2.0;
  EXPECT_FALSE(ValidateCorruptionOptions(bad).ok());

  // LossOptions validation covers the nested corruption options and the
  // fallback knob.
  LossOptions lo;
  lo.corruption.model = CorruptionModel::kIidBits;
  lo.corruption.bit_error_rate = -0.5;
  EXPECT_FALSE(ValidateLossOptions(lo).ok());
  lo.corruption.bit_error_rate = 0.0;
  EXPECT_TRUE(ValidateLossOptions(lo).ok());
  lo.fallback_scan_cycles = -1;
  EXPECT_FALSE(ValidateLossOptions(lo).ok());

  ChannelOptions co;
  co.packet_capacity = 64;
  co.loss.corruption.model = CorruptionModel::kIidBits;
  co.loss.corruption.bit_error_rate = 2.0;
  EXPECT_FALSE(BroadcastChannel::Create(1, 4, co).ok());
}

TEST(CorruptionChannelTest, ZeroBerMatchesDisabledBitForBit) {
  const BroadcastChannel off = MakeChannel(LossOptions{});
  LossOptions zero;
  zero.corruption.model = CorruptionModel::kIidBits;
  zero.corruption.bit_error_rate = 0.0;
  zero.corruption.seed = 99;
  zero.fallback_scan_cycles = 2;  // armed but must never fire
  const BroadcastChannel on = MakeChannel(zero);
  const ProbeTrace trace = MakeTrace();

  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(off.cycle_packets()));
    const uint64_t stream = static_cast<uint64_t>(i);
    auto a = off.Simulate(trace, arrival, stream);
    auto b = on.Simulate(trace, arrival, stream);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameOutcome(a.value(), b.value());
    EXPECT_EQ(b.value().corrupted_packets, 0);
    EXPECT_FALSE(b.value().fallback_scan);
    EXPECT_EQ(b.value().give_up, GiveUpStage::kNone);
  }
}

TEST(CorruptionChannelTest, EnablingCorruptionDoesNotPerturbLossDraws) {
  // The corruption process draws from its own seed space, so a lossy
  // channel with zero-rate corruption attached replays the loss-only
  // outcomes bit-for-bit.
  LossOptions loss_only;
  loss_only.model = LossModel::kIid;
  loss_only.loss_rate = 0.05;
  loss_only.seed = 7;
  LossOptions both = loss_only;
  both.corruption.model = CorruptionModel::kIidBits;
  both.corruption.bit_error_rate = 0.0;
  both.corruption.seed = 1234;
  const BroadcastChannel a = MakeChannel(loss_only);
  const BroadcastChannel b = MakeChannel(both);
  const ProbeTrace trace = MakeTrace();
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(a.cycle_packets()));
    auto ra = a.Simulate(trace, arrival, static_cast<uint64_t>(i));
    auto rb = b.Simulate(trace, arrival, static_cast<uint64_t>(i));
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ExpectSameOutcome(ra.value(), rb.value());
  }
}

TEST(CorruptionChannelTest, HighBerCorruptsAndRetunes) {
  LossOptions lo;
  lo.corruption.model = CorruptionModel::kIidBits;
  lo.corruption.bit_error_rate = 1e-4;  // ~56% per 8224-bit frame
  lo.corruption.seed = 3;
  const BroadcastChannel ch = MakeChannel(lo);
  const ProbeTrace trace = MakeTrace();
  Rng rng(23);
  int64_t corrupted = 0, retries = 0;
  for (int i = 0; i < 500; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    auto r = ch.Simulate(trace, arrival, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.ok());
    corrupted += r.value().corrupted_packets;
    retries += r.value().retries;
    EXPECT_EQ(r.value().lost_packets, 0);  // erasure model is off
  }
  EXPECT_GT(corrupted, 0);
  EXPECT_GT(retries, 0);
}

TEST(CorruptionChannelTest, BurstModelIsDeterministic) {
  LossOptions lo;
  lo.corruption.model = CorruptionModel::kBurstBits;
  lo.corruption.ber_good = 1e-6;
  lo.corruption.ber_bad = 1e-3;
  lo.corruption.p_good_to_bad = 0.1;
  lo.corruption.p_bad_to_good = 0.3;
  lo.corruption.seed = 5;
  lo.fallback_scan_cycles = 2;
  const BroadcastChannel ch1 = MakeChannel(lo);
  const BroadcastChannel ch2 = MakeChannel(lo);
  const ProbeTrace trace = MakeTrace();
  Rng rng(29);
  int64_t corrupted = 0;
  for (int i = 0; i < 300; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch1.cycle_packets()));
    auto a = ch1.Simulate(trace, arrival, static_cast<uint64_t>(i));
    auto b = ch2.Simulate(trace, arrival, static_cast<uint64_t>(i));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameOutcome(a.value(), b.value());
    corrupted += a.value().corrupted_packets;
  }
  EXPECT_GT(corrupted, 0);
}

TEST(CorruptionChannelTest, FallbackScanRecoversWhatRetriesCannot) {
  LossOptions harsh;
  harsh.model = LossModel::kIid;
  harsh.loss_rate = 0.5;
  harsh.max_retries = 1;
  harsh.seed = 11;
  LossOptions with_fallback = harsh;
  with_fallback.fallback_scan_cycles = 8;
  const BroadcastChannel bare = MakeChannel(harsh);
  const BroadcastChannel armed = MakeChannel(with_fallback);
  const ProbeTrace trace = MakeTrace();
  Rng rng(31);
  int bare_unrecoverable = 0, armed_unrecoverable = 0, fallbacks = 0;
  for (int i = 0; i < 500; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(bare.cycle_packets()));
    auto a = bare.Simulate(trace, arrival, static_cast<uint64_t>(i));
    auto b = armed.Simulate(trace, arrival, static_cast<uint64_t>(i));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    bare_unrecoverable += a.value().unrecoverable ? 1 : 0;
    armed_unrecoverable += b.value().unrecoverable ? 1 : 0;
    if (b.value().fallback_scan) {
      ++fallbacks;
      // The ladder only reaches the scan after the retry budget burned.
      EXPECT_GT(b.value().retries + b.value().tuning_probe, 1);
      // Scanning listens; it never ends up cheaper than giving up at the
      // same point, and a recovered scan still answered the query.
      if (!b.value().unrecoverable) {
        EXPECT_GE(b.value().latency, a.value().latency);
      } else {
        EXPECT_EQ(b.value().give_up, GiveUpStage::kFallbackBudget);
      }
    }
    if (!a.value().unrecoverable) {
      // Queries the retry protocol already recovers are untouched by
      // arming the fallback.
      ExpectSameOutcome(a.value(), b.value());
    }
  }
  EXPECT_GT(bare_unrecoverable, 0);
  EXPECT_GT(fallbacks, 0);
  // The whole point: the scan rescues most of what retries could not.
  EXPECT_LT(armed_unrecoverable, bare_unrecoverable);
}

TEST(CorruptionChannelTest, TotalLossExhaustsEveryRung) {
  LossOptions lo;
  lo.model = LossModel::kIid;
  lo.loss_rate = 1.0;
  lo.max_retries = 2;
  lo.seed = 13;
  lo.fallback_scan_cycles = 3;
  const BroadcastChannel ch = MakeChannel(lo);
  const ProbeTrace trace = MakeTrace();
  auto r = ch.Simulate(trace, 0.25, 0);
  ASSERT_TRUE(r.ok());
  const auto& out = r.value();
  EXPECT_TRUE(out.unrecoverable);
  EXPECT_TRUE(out.fallback_scan);
  EXPECT_EQ(out.give_up, GiveUpStage::kFallbackBudget);
  EXPECT_GT(out.latency, 0.0);  // terminated with finite give-up latency

  // Without the fallback the same channel gives up at the probe rung.
  lo.fallback_scan_cycles = 0;
  const BroadcastChannel bare = MakeChannel(lo);
  auto r2 = bare.Simulate(trace, 0.25, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().unrecoverable);
  EXPECT_FALSE(r2.value().fallback_scan);
  EXPECT_EQ(r2.value().give_up, GiveUpStage::kProbeBudget);
}

TEST(CorruptionChannelTest, TraceEventsMirrorOutcome) {
  LossOptions lo;
  lo.model = LossModel::kIid;
  lo.loss_rate = 0.3;
  lo.max_retries = 1;
  lo.seed = 41;
  lo.corruption.model = CorruptionModel::kIidBits;
  lo.corruption.bit_error_rate = 5e-5;
  lo.corruption.seed = 42;
  lo.fallback_scan_cycles = 4;
  const BroadcastChannel ch = MakeChannel(lo);
  const ProbeTrace trace = MakeTrace();
  Rng rng(43);
  int corruption_events_total = 0, fallback_events_total = 0;
  for (int i = 0; i < 400; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    QueryTrace qt;
    auto r = ch.Simulate(trace, arrival, static_cast<uint64_t>(i), &qt);
    ASSERT_TRUE(r.ok());
    const auto& out = r.value();
    EXPECT_EQ(qt.corrupted_packets, out.corrupted_packets);
    EXPECT_EQ(qt.fallback_scan, out.fallback_scan);
    int losses = 0, corruptions = 0, fallback_events = 0, reads = 0;
    double doze = 0.0;
    for (const TraceEvent& e : qt.events) {
      switch (e.kind) {
        case TraceEventKind::kLoss:
          ++losses;
          break;
        case TraceEventKind::kCorruption:
          ++corruptions;
          break;
        case TraceEventKind::kFallbackScan:
          ++fallback_events;
          reads += e.packet;
          break;
        case TraceEventKind::kProbe:
          ++reads;
          break;
        case TraceEventKind::kIndexRead:
          ++reads;
          break;
        case TraceEventKind::kBucketRead:
          reads += e.packet;
          break;
        case TraceEventKind::kDoze:
          doze += e.dur;
          break;
        case TraceEventKind::kRetune:
          break;
        case TraceEventKind::kEpochSwitch:
          ADD_FAILURE() << "single-epoch traces never switch";
          break;
      }
    }
    EXPECT_EQ(losses, out.lost_packets);
    EXPECT_EQ(corruptions, out.corrupted_packets);
    EXPECT_EQ(fallback_events > 0, out.fallback_scan);
    EXPECT_EQ(reads, out.tuning_total());
    // The paper's invariant survives the fallback rung: every elapsed
    // packet is either dozed through or read.
    EXPECT_NEAR(doze + reads, out.latency, 1e-6);
    corruption_events_total += corruptions;
    fallback_events_total += fallback_events;
  }
  EXPECT_GT(corruption_events_total, 0);
  EXPECT_GT(fallback_events_total, 0);
}

// --- experiment-level determinism -------------------------------------------

ExperimentOptions CorruptionExperimentOptions(int threads) {
  ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 4000;
  opt.seed = 42;
  opt.num_threads = threads;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.05;
  opt.loss.max_retries = 2;
  opt.loss.seed = 7;
  opt.loss.corruption.model = CorruptionModel::kIidBits;
  opt.loss.corruption.bit_error_rate = 5e-5;
  opt.loss.corruption.seed = 8;
  opt.loss.fallback_scan_cycles = 2;
  return opt;
}

TEST(CorruptionExperimentTest, ResultsAreThreadCountInvariant) {
  const sub::Subdivision sub = test::RandomVoronoi(30, 9);
  core::DTree::Options o;
  o.packet_capacity = 128;
  const core::DTree tree = core::DTree::Build(sub, o).value();

  ExperimentResult base;
  bool first = true;
  for (int threads : {1, 4, 8}) {
    auto r = RunExperiment(tree, sub, nullptr,
                           CorruptionExperimentOptions(threads));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const ExperimentResult& res = r.value();
    EXPECT_GT(res.total_corrupted_packets, 0);
    if (first) {
      base = std::move(r).value();
      first = false;
      continue;
    }
    EXPECT_EQ(base.mean_latency, res.mean_latency);  // bitwise
    EXPECT_EQ(base.mean_tuning_total, res.mean_tuning_total);
    EXPECT_EQ(base.total_retries, res.total_retries);
    EXPECT_EQ(base.total_corrupted_packets, res.total_corrupted_packets);
    EXPECT_EQ(base.mean_lost_packets, res.mean_lost_packets);
    EXPECT_EQ(base.unrecoverable_queries, res.unrecoverable_queries);
    EXPECT_EQ(base.fallback_queries, res.fallback_queries);
  }
}

TEST(CorruptionExperimentTest, ZeroRatesReproduceTheFaultFreeDriver) {
  const sub::Subdivision sub = test::RandomVoronoi(30, 9);
  core::DTree::Options o;
  o.packet_capacity = 128;
  const core::DTree tree = core::DTree::Build(sub, o).value();

  ExperimentOptions clean;
  clean.packet_capacity = 128;
  clean.num_queries = 4000;
  clean.seed = 42;
  ExperimentOptions zeroed = clean;
  zeroed.loss.model = LossModel::kIid;
  zeroed.loss.loss_rate = 0.0;
  zeroed.loss.corruption.model = CorruptionModel::kIidBits;
  zeroed.loss.corruption.bit_error_rate = 0.0;
  zeroed.loss.fallback_scan_cycles = 4;

  auto a = RunExperiment(tree, sub, nullptr, clean);
  auto b = RunExperiment(tree, sub, nullptr, zeroed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().mean_latency, b.value().mean_latency);  // bitwise
  EXPECT_EQ(a.value().mean_tuning_index, b.value().mean_tuning_index);
  EXPECT_EQ(a.value().mean_tuning_total, b.value().mean_tuning_total);
  EXPECT_EQ(b.value().total_retries, 0);
  EXPECT_EQ(b.value().total_corrupted_packets, 0);
  EXPECT_EQ(b.value().fallback_queries, 0);
  EXPECT_EQ(b.value().unrecoverable_queries, 0);
}

}  // namespace
}  // namespace dtree::bcast
