#include <set>

#include "broadcast/air_index.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::core {
namespace {

using geom::Point;

DTree::Options Opts(int capacity) {
  DTree::Options o;
  o.packet_capacity = capacity;
  return o;
}

TEST(DTreeTest, SingleRegion) {
  std::vector<geom::Polygon> one{
      geom::Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}})};
  auto sub_r = sub::Subdivision::FromPolygons({0, 0, 1, 1}, one);
  ASSERT_TRUE(sub_r.ok());
  auto tree_r = DTree::Build(sub_r.value(), Opts(128));
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const DTree& tree = tree_r.value();
  EXPECT_EQ(tree.num_nodes(), 0);
  EXPECT_EQ(tree.Locate({0.5, 0.5}), 0);
  auto trace_r = tree.Probe({0.5, 0.5});
  ASSERT_TRUE(trace_r.ok());
  EXPECT_EQ(trace_r.value().region, 0);
  EXPECT_TRUE(trace_r.value().packets.empty());
}

TEST(DTreeTest, RejectsTinyPackets) {
  const sub::Subdivision sub = test::RandomVoronoi(8, 2);
  EXPECT_FALSE(DTree::Build(sub, Opts(8)).ok());
}

TEST(DTreeTest, StructureProperties) {
  const sub::Subdivision sub = test::RandomVoronoi(64, 9);
  auto tree_r = DTree::Build(sub, Opts(256));
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const DTree& tree = tree_r.value();
  // Property 1: every node has exactly two children -> a binary tree over
  // N regions has N-1 internal nodes.
  EXPECT_EQ(tree.num_nodes(), 63);
  // Property 3: height-balanced; with balanced splits the height is
  // exactly ceil(log2 N).
  EXPECT_EQ(tree.height(), 6);
  // Every region appears exactly once as a data pointer.
  std::multiset<int> regions;
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const DTreeNode& n = tree.node(i);
    EXPECT_TRUE((n.left_node >= 0) != (n.left_region >= 0));
    EXPECT_TRUE((n.right_node >= 0) != (n.right_region >= 0));
    if (n.left_region >= 0) regions.insert(n.left_region);
    if (n.right_region >= 0) regions.insert(n.right_region);
  }
  EXPECT_EQ(regions.size(), 64u);
  EXPECT_EQ(std::set<int>(regions.begin(), regions.end()).size(), 64u);
}

TEST(DTreeTest, LocateMatchesBruteForce) {
  const sub::Subdivision sub = test::RandomVoronoi(100, 4);
  auto tree_r = DTree::Build(sub, Opts(256));
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(5);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(DTreeTest, LocateMatchesBruteForceClustered) {
  const sub::Subdivision sub = test::ClusteredVoronoi(150, 21);
  auto tree_r = DTree::Build(sub, Opts(128));
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(6);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(DTreeTest, ProbeTracesAreValid) {
  const sub::Subdivision sub = test::RandomVoronoi(64, 10);
  for (int capacity : {64, 256, 2048}) {
    auto tree_r = DTree::Build(sub, Opts(capacity));
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    const DTree& tree = tree_r.value();
    Rng rng(11);
    for (int q = 0; q < 500; ++q) {
      const Point p = test::UnambiguousQueryPoint(sub, &rng);
      auto trace_r = tree.Probe(p);
      ASSERT_TRUE(trace_r.ok());
      EXPECT_OK(bcast::ValidateTrace(trace_r.value(),
                                     tree.NumIndexPackets(),
                                     sub.NumRegions()));
      EXPECT_EQ(trace_r.value().region, tree.Locate(p));
      EXPECT_FALSE(trace_r.value().packets.empty());
      // Tuning is bounded by reading every node on a root-to-leaf path in
      // full (loose sanity bound).
      EXPECT_LE(static_cast<int>(trace_r.value().packets.size()),
                tree.NumIndexPackets());
    }
  }
}

TEST(DTreeTest, PagingInvariants) {
  const sub::Subdivision sub = test::RandomVoronoi(100, 12);
  for (int capacity : {64, 128, 512}) {
    auto tree_r = DTree::Build(sub, Opts(capacity));
    ASSERT_TRUE(tree_r.ok());
    const DTree& tree = tree_r.value();
    size_t total = 0;
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const DTreeNode& n = tree.node(i);
      const bcast::NodeSpan& s = tree.span(i);
      ASSERT_GE(s.first_packet, 0);
      ASSERT_LT(s.last_packet(), tree.NumIndexPackets());
      EXPECT_EQ(s.num_packets > 1, n.large);
      EXPECT_LE(s.offset + 1, static_cast<size_t>(capacity));
      total += n.byte_size;
      // Forward-only: children never live in earlier packets.
      if (n.left_node >= 0) {
        EXPECT_GE(tree.span(n.left_node).first_packet, s.last_packet());
      }
      if (n.right_node >= 0) {
        EXPECT_GE(tree.span(n.right_node).first_packet, s.last_packet());
      }
    }
    EXPECT_EQ(total, tree.IndexBytes());
    EXPECT_LE(tree.IndexBytes(),
              static_cast<size_t>(tree.NumIndexPackets()) * capacity);
  }
}

TEST(DTreeTest, LeafMergingSavesPackets) {
  const sub::Subdivision sub = test::RandomVoronoi(200, 13);
  DTree::Options merged = Opts(512);
  DTree::Options unmerged = Opts(512);
  unmerged.merge_leaf_packets = false;
  auto a = DTree::Build(sub, merged);
  auto b = DTree::Build(sub, unmerged);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a.value().NumIndexPackets(), b.value().NumIndexPackets());
  // Same answers either way.
  Rng rng(14);
  for (int q = 0; q < 300; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(a.value().Locate(p), b.value().Locate(p));
  }
}

TEST(DTreeTest, EarlyTerminationNeverIncreasesTuning) {
  const sub::Subdivision sub = test::ClusteredVoronoi(120, 15);
  DTree::Options with = Opts(64);
  DTree::Options without = Opts(64);
  without.early_termination = false;
  auto a = DTree::Build(sub, with);
  auto b = DTree::Build(sub, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(16);
  long with_total = 0, without_total = 0;
  for (int q = 0; q < 1000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    auto ta = a.value().Probe(p);
    auto tb = b.value().Probe(p);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    EXPECT_EQ(ta.value().region, tb.value().region);
    with_total += static_cast<long>(ta.value().packets.size());
    without_total += static_cast<long>(tb.value().packets.size());
  }
  EXPECT_LE(with_total, without_total);
}

TEST(DTreeSerializeTest, RoundTripQueries) {
  const sub::Subdivision sub = test::RandomVoronoi(80, 17);
  for (int capacity : {64, 128, 1024}) {
    auto tree_r = DTree::Build(sub, Opts(capacity));
    ASSERT_TRUE(tree_r.ok());
    const DTree& tree = tree_r.value();
    auto packets_r = SerializeDTree(tree);
    ASSERT_TRUE(packets_r.ok()) << packets_r.status().ToString();
    const auto& packets = packets_r.value();
    ASSERT_EQ(static_cast<int>(packets.size()), tree.NumIndexPackets());
    for (const auto& pkt : packets) {
      EXPECT_EQ(pkt.size(), static_cast<size_t>(capacity));
    }
    Rng rng(18);
    for (int q = 0; q < 500; ++q) {
      // Keep a float32-safe margin from borders: coordinates are
      // serialized as binary32 on the air.
      const Point p = test::UnambiguousQueryPoint(sub, &rng, 1e-3);
      std::vector<int> read;
      auto region_r = QueryFromPackets(packets, capacity,
                                       tree.options().early_termination, p,
                                       &read);
      ASSERT_TRUE(region_r.ok()) << region_r.status().ToString();
      EXPECT_EQ(region_r.value(), tree.Locate(p));
      // The byte-level client and the cost model agree on tuning.
      auto trace_r = tree.Probe(p);
      ASSERT_TRUE(trace_r.ok());
      EXPECT_EQ(read, trace_r.value().packets);
    }
  }
}

TEST(DTreeSerializeTest, SmallerPacketsMoreIndexPackets) {
  const sub::Subdivision sub = test::RandomVoronoi(100, 19);
  int prev_packets = 0;
  size_t prev_bytes = 0;
  for (int capacity : {2048, 1024, 512, 256, 128, 64}) {
    auto tree_r = DTree::Build(sub, Opts(capacity));
    ASSERT_TRUE(tree_r.ok());
    const int packets = tree_r.value().NumIndexPackets();
    if (prev_packets > 0) {
      EXPECT_GE(packets, prev_packets);
    }
    prev_packets = packets;
    if (prev_bytes > 0) {
      // Total bytes are nearly capacity-independent (node sizes only gain
      // the occasional RMC/LMC block).
      EXPECT_LT(tree_r.value().IndexBytes(), prev_bytes * 2);
    }
    prev_bytes = tree_r.value().IndexBytes();
  }
}

class DTreeSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DTreeSweepTest, AgreesWithOracle) {
  const auto [n, capacity] = GetParam();
  const sub::Subdivision sub = test::RandomVoronoi(n, 100 + n);
  auto tree_r = DTree::Build(sub, Opts(capacity));
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(200 + n);
  for (int q = 0; q < 400; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    ASSERT_EQ(tree_r.value().Locate(p), oracle.Locate(p))
        << "n=" << n << " capacity=" << capacity << " p=" << p.x << ","
        << p.y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DTreeSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 7, 25, 64, 150),
                       ::testing::Values(64, 256, 2048)));

}  // namespace
}  // namespace dtree::core
