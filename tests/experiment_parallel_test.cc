// Determinism and sampler-edge-case coverage for the parallel experiment
// driver: the sharded, stream-seeded query loop must return bit-identical
// metrics for every thread count, and QuerySampler must handle degenerate
// weight vectors exactly as documented.

#include <cmath>
#include <limits>
#include <set>

#include "broadcast/experiment.h"
#include "common/rng.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  // Bit-identical, not approximately equal: shard merge order is fixed.
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.normalized_latency, b.normalized_latency);
  EXPECT_EQ(a.mean_tuning_index, b.mean_tuning_index);
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_tuning_noindex, b.mean_tuning_noindex);
  EXPECT_EQ(a.indexing_efficiency, b.indexing_efficiency);
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.index_packets, b.index_packets);
  EXPECT_EQ(a.cycle_packets, b.cycle_packets);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.min_tuning_total, b.min_tuning_total);
  EXPECT_EQ(a.max_tuning_total, b.max_tuning_total);
}

/// The aggregate statistics must be internally consistent: every mean lies
/// within its exact [min, max] envelope, and the histograms agree with the
/// scalar aggregates they were accumulated alongside.
void ExpectConsistentDistributions(const ExperimentResult& r,
                                   int num_queries) {
  EXPECT_LE(r.min_latency, r.mean_latency);
  EXPECT_GE(r.max_latency, r.mean_latency);
  EXPECT_LE(r.min_tuning_total, r.mean_tuning_total);
  EXPECT_GE(r.max_tuning_total, r.mean_tuning_total);

  const Histogram* lat = r.metrics.FindHistogram(kLatencyHist);
  const Histogram* tun = r.metrics.FindHistogram(kTuningTotalHist);
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(tun, nullptr);
  EXPECT_EQ(lat->TotalCount(), static_cast<uint64_t>(num_queries));
  EXPECT_EQ(tun->TotalCount(), static_cast<uint64_t>(num_queries));
  EXPECT_EQ(lat->Min(), r.min_latency);
  EXPECT_EQ(lat->Max(), r.max_latency);
  EXPECT_DOUBLE_EQ(lat->Mean(), r.mean_latency);
  EXPECT_EQ(tun->Min(), r.min_tuning_total);
  EXPECT_EQ(tun->Max(), r.max_tuning_total);
  EXPECT_DOUBLE_EQ(tun->Mean(), r.mean_tuning_total);
}

TEST(ParallelExperimentTest, ThreadCountDoesNotChangeResults) {
  const sub::Subdivision sub = test::RandomVoronoi(80, 404);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 20000;
  opt.seed = 7;
  opt.num_threads = 1;
  auto serial = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : {4, 8}) {
    opt.num_threads = threads;
    auto parallel = RunExperiment(tree.value(), sub, nullptr, opt);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdentical(serial.value(), parallel.value());
    ExpectConsistentDistributions(parallel.value(), opt.num_queries);
  }
}

TEST(ParallelExperimentTest, GoldenValuesUnchangedByObservabilityLayer) {
  // Regression pin: these exact doubles were produced by the driver BEFORE
  // the trace/metrics layer existed, for this precise configuration. With
  // tracing disabled (the default) the observability layer must not move a
  // single bit — histograms accumulate alongside the original sums, and
  // Simulate's trace hook is a null pointer. If this test fails, tracing
  // has leaked into the simulation (e.g. an RNG draw or a reordered sum).
  const sub::Subdivision sub = test::RandomVoronoi(80, 404);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 20000;
  opt.seed = 7;
  for (int threads : {1, 8}) {
    opt.num_threads = threads;
    auto res = RunExperiment(tree.value(), sub, nullptr, opt);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const ExperimentResult& r = res.value();
    EXPECT_EQ(r.mean_latency, 265.92563622764175);
    EXPECT_EQ(r.normalized_latency, 1.6620352264227609);
    EXPECT_EQ(r.mean_tuning_index, 4.1167499999999997);
    EXPECT_EQ(r.mean_tuning_total, 9.1167499999999997);
    EXPECT_EQ(r.mean_tuning_noindex, 162.98769999999999);
    EXPECT_EQ(r.indexing_efficiency, 1.4526318224732713);
    EXPECT_EQ(r.m, 4);
    EXPECT_EQ(r.index_packets, 21);
    EXPECT_EQ(r.cycle_packets, 404);
    ExpectConsistentDistributions(r, opt.num_queries);
  }
}

TEST(ParallelExperimentTest, DeterministicWithOracleAndWeights) {
  const sub::Subdivision sub = test::ClusteredVoronoi(50, 505);
  const sub::PointLocator oracle(sub);
  core::DTree::Options topt;
  topt.packet_capacity = 128;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  std::vector<double> weights(sub.NumRegions(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 3) weights[i] = 5.0;

  ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 6000;
  opt.seed = 11;
  opt.distribution = QueryDistribution::kWeightedRegion;
  opt.region_weights = weights;
  opt.num_threads = 1;
  auto serial = RunExperiment(tree.value(), sub, &oracle, opt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  opt.num_threads = 8;
  auto parallel = RunExperiment(tree.value(), sub, &oracle, opt);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdentical(serial.value(), parallel.value());
}

TEST(ParallelExperimentTest, SeedStillMatters) {
  const sub::Subdivision sub = test::RandomVoronoi(40, 606);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 5000;
  opt.num_threads = 4;
  opt.seed = 1;
  auto a = RunExperiment(tree.value(), sub, nullptr, opt);
  opt.seed = 2;
  auto b = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().mean_latency, b.value().mean_latency);
}

TEST(ParallelExperimentTest, FewerQueriesThanShardsStillDeterministic) {
  // num_queries below the internal shard count exercises the shard-count
  // clamp; results must still be thread-count independent.
  const sub::Subdivision sub = test::RandomVoronoi(20, 707);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 13;
  opt.seed = 3;
  opt.num_threads = 1;
  auto serial = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(serial.ok());
  opt.num_threads = 8;
  auto parallel = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial.value(), parallel.value());
}

TEST(ParallelExperimentTest, ZeroQueriesIsALegalDegenerateRun) {
  // Pinned behavior for the empty load: the run succeeds, layout fields
  // are filled, and every aggregate is exactly zero — no division by the
  // zero query count may surface as NaN. Negative counts stay rejected.
  const sub::Subdivision sub = test::RandomVoronoi(20, 909);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 0;
  for (int threads : {1, 8}) {
    opt.num_threads = threads;
    auto res = RunExperiment(tree.value(), sub, nullptr, opt);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const ExperimentResult& r = res.value();
    EXPECT_GT(r.cycle_packets, 0);
    EXPECT_GT(r.m, 0);
    EXPECT_EQ(r.mean_latency, 0.0);
    EXPECT_EQ(r.normalized_latency, 0.0);
    EXPECT_EQ(r.mean_tuning_index, 0.0);
    EXPECT_EQ(r.mean_tuning_total, 0.0);
    EXPECT_EQ(r.mean_tuning_noindex, 0.0);
    EXPECT_EQ(r.indexing_efficiency, 0.0);
    EXPECT_EQ(r.mean_retries, 0.0);
    EXPECT_EQ(r.mean_lost_packets, 0.0);
    EXPECT_EQ(r.mean_corrupted_packets, 0.0);
    EXPECT_EQ(r.min_latency, 0.0);
    EXPECT_EQ(r.max_latency, 0.0);
    EXPECT_EQ(r.min_tuning_total, 0.0);
    EXPECT_EQ(r.max_tuning_total, 0.0);
    EXPECT_EQ(r.unrecoverable_queries, 0);
    EXPECT_EQ(r.fallback_queries, 0);
    EXPECT_FALSE(std::isnan(r.mean_latency));
    const Histogram* lat = r.metrics.FindHistogram(kLatencyHist);
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->TotalCount(), 0u);
  }
  opt.num_queries = -1;
  EXPECT_FALSE(RunExperiment(tree.value(), sub, nullptr, opt).ok());
}

TEST(ParallelExperimentTest, AllUnrecoverableShardsAggregateSanely) {
  // Loss rate 1 with the fallback disabled makes every query burn its
  // whole retry budget: the pinned aggregation is
  // unrecoverable_queries == num_queries with finite (latency-until-
  // give-up) means, identical across thread counts.
  const sub::Subdivision sub = test::RandomVoronoi(20, 910);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 500;
  opt.seed = 21;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 1.0;
  opt.loss.seed = 6;
  opt.loss.max_retries = 2;
  opt.num_threads = 1;
  auto serial = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const ExperimentResult& r = serial.value();
  EXPECT_EQ(r.unrecoverable_queries, opt.num_queries);
  EXPECT_TRUE(std::isfinite(r.mean_latency));
  EXPECT_GT(r.mean_latency, 0.0);  // time until giving up still counts
  EXPECT_TRUE(std::isfinite(r.mean_tuning_noindex));
  EXPECT_GT(r.mean_tuning_noindex, 0.0);  // lossy baseline gave up too
  opt.num_threads = 8;
  auto parallel = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial.value(), parallel.value());
}

TEST(RngStreamTest, StreamsAreDecorrelatedAndReproducible) {
  Rng a = Rng::ForStream(42, 0);
  Rng a2 = Rng::ForStream(42, 0);
  Rng b = Rng::ForStream(42, 1);
  Rng c = Rng::ForStream(43, 0);
  const double va = a.Uniform(0.0, 1.0);
  EXPECT_EQ(va, a2.Uniform(0.0, 1.0));  // same (seed, stream) -> same draw
  EXPECT_NE(va, b.Uniform(0.0, 1.0));   // adjacent stream differs
  EXPECT_NE(va, c.Uniform(0.0, 1.0));   // adjacent seed differs
}

TEST(QuerySamplerTest, WeightVectorSizeMismatchFails) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 808);
  auto r = QuerySampler::Create(sub, QueryDistribution::kWeightedRegion,
                                std::vector<double>(3, 1.0));
  EXPECT_FALSE(r.ok());
  auto empty = QuerySampler::Create(sub, QueryDistribution::kWeightedRegion,
                                    {});
  EXPECT_FALSE(empty.ok());
}

TEST(QuerySamplerTest, RejectsNegativeNonFiniteAndAllZeroWeights) {
  const sub::Subdivision sub = test::RandomVoronoi(5, 809);
  std::vector<double> w(5, 1.0);
  w[2] = -0.5;
  EXPECT_FALSE(
      QuerySampler::Create(sub, QueryDistribution::kWeightedRegion, w).ok());
  w[2] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      QuerySampler::Create(sub, QueryDistribution::kWeightedRegion, w).ok());
  EXPECT_FALSE(QuerySampler::Create(sub, QueryDistribution::kWeightedRegion,
                                    std::vector<double>(5, 0.0))
                   .ok());
}

TEST(QuerySamplerTest, ZeroWeightRegionsAreNeverDrawn) {
  const sub::Subdivision sub = test::RandomVoronoi(12, 810);
  const sub::PointLocator oracle(sub);
  // Only regions 0 and 7 carry mass.
  std::vector<double> w(12, 0.0);
  w[0] = 1.0;
  w[7] = 3.0;
  auto sampler =
      QuerySampler::Create(sub, QueryDistribution::kWeightedRegion, w);
  ASSERT_TRUE(sampler.ok());
  Rng rng(17);
  std::set<int> hit;
  for (int i = 0; i < 4000; ++i) {
    hit.insert(oracle.Locate(sampler.value().Draw(&rng)));
  }
  EXPECT_TRUE(hit.count(0) == 1);
  EXPECT_TRUE(hit.count(7) == 1);
  EXPECT_LE(hit.size(), 2u);
}

TEST(QuerySamplerTest, SingleNonzeroWeightDrawsOnlyThatRegion) {
  // Degenerate skew: all mass on one region. Every draw must land there,
  // and the experiment driver must run on such a load without incident.
  const sub::Subdivision sub = test::RandomVoronoi(15, 811);
  const sub::PointLocator oracle(sub);
  std::vector<double> w(15, 0.0);
  w[9] = 0.25;
  auto sampler =
      QuerySampler::Create(sub, QueryDistribution::kWeightedRegion, w);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(oracle.Locate(sampler.value().Draw(&rng)), 9);
  }

  core::DTree::Options topt;
  topt.packet_capacity = 128;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 1000;
  opt.seed = 31;
  opt.distribution = QueryDistribution::kWeightedRegion;
  opt.region_weights = w;
  auto res = RunExperiment(tree.value(), sub, &oracle, opt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // Every query hits the same region, so every query reads the same
  // number of data packets and the tuning envelope is tight.
  EXPECT_GE(res.value().min_tuning_total, 2.0);  // >= 1 probe + 1 index
  EXPECT_LE(res.value().min_tuning_total, res.value().max_tuning_total);
}

TEST(QuerySamplerTest, SingleRegionSubdivision) {
  // One region tiling the whole service area: both region-based
  // distributions must draw inside it.
  const geom::BBox area{0.0, 0.0, 10.0, 10.0};
  geom::Polygon square(
      {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}});
  auto sub_r = sub::Subdivision::FromPolygons(area, {square});
  ASSERT_TRUE(sub_r.ok());
  const sub::Subdivision& sub = sub_r.value();
  Rng rng(23);
  for (QueryDistribution d : {QueryDistribution::kUniformRegion,
                              QueryDistribution::kWeightedRegion}) {
    auto sampler = QuerySampler::Create(
        sub, d,
        d == QueryDistribution::kWeightedRegion ? std::vector<double>{2.5}
                                                : std::vector<double>{});
    ASSERT_TRUE(sampler.ok());
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(area.Contains(sampler.value().Draw(&rng)));
    }
  }
}

}  // namespace
}  // namespace dtree::bcast
