#include <cmath>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/predicates.h"
#include "geom/triangle.h"

#include "gtest/gtest.h"

namespace dtree::geom {
namespace {

TEST(PointTest, BasicArithmetic) {
  Point a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), Point(4.0, 1.0));
  EXPECT_EQ((a - b), Point(-2.0, 3.0));
  EXPECT_EQ((a * 2.0), Point(2.0, 4.0));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(13.0));
}

TEST(PointTest, LexOrder) {
  EXPECT_TRUE(Point(1, 5).LexLess(Point(2, 0)));
  EXPECT_TRUE(Point(1, 0).LexLess(Point(1, 1)));
  EXPECT_FALSE(Point(1, 1).LexLess(Point(1, 1)));
}

TEST(BBoxTest, ExtendAndContain) {
  BBox b;
  EXPECT_TRUE(b.empty());
  b.Extend(Point{1, 2});
  b.Extend(Point{4, -1});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.Area(), 9.0);
  EXPECT_TRUE(b.Contains(Point{2, 0}));
  EXPECT_FALSE(b.Contains(Point{5, 0}));
  EXPECT_TRUE(b.Contains(Point{1, 2}));  // boundary counts
}

TEST(BBoxTest, IntersectionArea) {
  BBox a{0, 0, 10, 10}, b{5, 5, 15, 15};
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 25.0);
  BBox c{20, 20, 30, 30};
  EXPECT_DOUBLE_EQ(a.IntersectionArea(c), 0.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BBoxTest, UnionAndMargin) {
  BBox a{0, 0, 2, 2}, b{3, 1, 5, 4};
  BBox u = a.Union(b);
  EXPECT_EQ(u, BBox(0, 0, 5, 4));
  EXPECT_DOUBLE_EQ(u.Margin(), 9.0);
}

TEST(PredicatesTest, Orientation) {
  EXPECT_EQ(Orient({0, 0}, {1, 0}, {0, 1}), 1);   // left turn
  EXPECT_EQ(Orient({0, 0}, {1, 0}, {0, -1}), -1); // right turn
  EXPECT_EQ(Orient({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
  EXPECT_EQ(Orient({0, 0}, {100, 100}, {200, 200.0000000001}), 0);
}

TEST(PredicatesTest, OnSegment) {
  EXPECT_TRUE(OnSegment({0, 0}, {10, 0}, {5, 0}));
  EXPECT_TRUE(OnSegment({0, 0}, {10, 0}, {0, 0}));
  EXPECT_FALSE(OnSegment({0, 0}, {10, 0}, {5, 0.1}));
  EXPECT_FALSE(OnSegment({0, 0}, {10, 0}, {11, 0}));
}

TEST(PredicatesTest, DistanceToSegment) {
  EXPECT_DOUBLE_EQ(DistanceToSegment({0, 0}, {10, 0}, {5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({0, 0}, {10, 0}, {-4, 3}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({2, 2}, {2, 2}, {5, 6}), 5.0);
}

TEST(PredicatesTest, ProperIntersection) {
  EXPECT_TRUE(SegmentsProperlyIntersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  // Shared endpoint is not a proper intersection.
  EXPECT_FALSE(SegmentsProperlyIntersect({0, 0}, {10, 10}, {0, 0}, {10, 0}));
  // Disjoint.
  EXPECT_FALSE(SegmentsProperlyIntersect({0, 0}, {1, 1}, {5, 5}, {6, 6}));
  // T-touch (endpoint on interior) is not proper.
  EXPECT_FALSE(SegmentsProperlyIntersect({0, 0}, {10, 0}, {5, 0}, {5, 5}));
}

TEST(PredicatesTest, RayRightHalfOpenRule) {
  const Point p{0, 5};
  // Plain crossing.
  EXPECT_TRUE(RayRightCrossesSegment(p, {3, 0}, {3, 10}));
  // Segment behind the point.
  EXPECT_FALSE(RayRightCrossesSegment(p, {-3, 0}, {-3, 10}));
  // Horizontal segment on the ray: never crossed.
  EXPECT_FALSE(RayRightCrossesSegment(p, {1, 5}, {9, 5}));
  // A polyline vertex exactly at ray height: the two incident segments
  // count once in total when the polyline passes through.
  const Point shared{4, 5};
  int crossings = 0;
  if (RayRightCrossesSegment(p, {4, 0}, shared)) ++crossings;
  if (RayRightCrossesSegment(p, shared, {4, 10})) ++crossings;
  EXPECT_EQ(crossings, 1);
  // ...and zero or two times when it only touches and turns back.
  crossings = 0;
  if (RayRightCrossesSegment(p, {4, 0}, shared)) ++crossings;
  if (RayRightCrossesSegment(p, shared, {5, 0})) ++crossings;
  EXPECT_EQ(crossings % 2, 0);
}

TEST(PredicatesTest, RayDownHalfOpenRule) {
  const Point p{5, 10};
  EXPECT_TRUE(RayDownCrossesSegment(p, {0, 3}, {10, 3}));
  EXPECT_FALSE(RayDownCrossesSegment(p, {0, 12}, {10, 12}));
  // Vertical segment aligned with the ray: never crossed.
  EXPECT_FALSE(RayDownCrossesSegment(p, {5, 0}, {5, 8}));
  const Point shared{5, 4};
  int crossings = 0;
  if (RayDownCrossesSegment(p, {0, 4}, shared)) ++crossings;
  if (RayDownCrossesSegment(p, shared, {10, 4})) ++crossings;
  EXPECT_EQ(crossings, 1);
}

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, AreaAndOrientation) {
  Polygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.SignedArea(), 1.0);
  EXPECT_TRUE(sq.IsCCW());
  Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -1.0);
  cw.EnsureCCW();
  EXPECT_TRUE(cw.IsCCW());
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);
}

TEST(PolygonTest, Centroid) {
  const Point c = UnitSquare().Centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonTest, Contains) {
  Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.5, 0.5}));
  EXPECT_FALSE(sq.Contains({1.5, 0.5}));
  EXPECT_TRUE(sq.Contains({0.0, 0.5}));   // boundary
  EXPECT_TRUE(sq.Contains({1.0, 1.0}));   // corner
  EXPECT_FALSE(sq.Contains({-1e-6, 0.5}));
}

TEST(PolygonTest, ContainsHalfOpenInteriorAndExterior) {
  Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.ContainsHalfOpen({0.5, 0.5}));
  EXPECT_FALSE(sq.ContainsHalfOpen({1.5, 0.5}));
  EXPECT_FALSE(sq.ContainsHalfOpen({-1e-6, 0.5}));
}

// Two cells sharing a vertical edge: every point on the shared edge must be
// claimed by exactly one of them (the inclusive Contains claims both — the
// ambiguity the region cache must not inherit).
TEST(PolygonTest, HalfOpenSharedEdgeResolvesToOneCell) {
  Polygon left({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon right({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  for (double y : {0.0, 0.25, 0.5, 1.0 - 1e-12}) {
    const Point p{1.0, y};
    EXPECT_NE(left.ContainsHalfOpen(p), right.ContainsHalfOpen(p))
        << "shared-edge point (1, " << y << ") must be in exactly one cell";
    // The inclusive test claims the edge from both sides (y=1.0-1e-12 is
    // within kGeomEps of the corner for both, and interior edge points are
    // exactly on both boundaries).
    EXPECT_TRUE(left.Contains(p));
    EXPECT_TRUE(right.Contains(p));
  }
  // Horizontal shared edge too (the collinear-with-ray case).
  Polygon bottom({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon top({{0, 1}, {1, 1}, {1, 2}, {0, 2}});
  for (double x : {0.0, 0.3, 0.5, 1.0 - 1e-12}) {
    const Point p{x, 1.0};
    EXPECT_NE(bottom.ContainsHalfOpen(p), top.ContainsHalfOpen(p))
        << "shared-edge point (" << x << ", 1) must be in exactly one cell";
  }
}

// Four cells meeting at a vertex: the vertex belongs to exactly one.
TEST(PolygonTest, HalfOpenSharedVertexResolvesToOneCell) {
  Polygon cells[4] = {
      Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}),
      Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}),
      Polygon({{0, 1}, {1, 1}, {1, 2}, {0, 2}}),
      Polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}}),
  };
  const Point corner{1.0, 1.0};
  int owners = 0;
  for (const Polygon& c : cells) {
    if (c.ContainsHalfOpen(corner)) ++owners;
  }
  EXPECT_EQ(owners, 1);
  // And every edge midpoint of the 2x2 tiling has exactly one owner.
  for (const Point p : {Point{1.0, 0.5}, Point{1.0, 1.5}, Point{0.5, 1.0},
                        Point{1.5, 1.0}}) {
    owners = 0;
    for (const Polygon& c : cells) {
      if (c.ContainsHalfOpen(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "edge point (" << p.x << ", " << p.y << ")";
  }
}

// A query point whose rightward ray passes exactly through polygon vertices
// (collinear-ray case) must still get a correct parity.
TEST(PolygonTest, HalfOpenCollinearRayThroughVertices) {
  // Diamond with vertices at ray height y=1 for queries along y=1.
  Polygon diamond({{1, 0}, {2, 1}, {1, 2}, {0, 1}});
  EXPECT_TRUE(diamond.ContainsHalfOpen({1.0, 1.0}));   // center
  EXPECT_FALSE(diamond.ContainsHalfOpen({-1.0, 1.0}));  // left of both verts
  EXPECT_FALSE(diamond.ContainsHalfOpen({3.0, 1.0}));   // right of both verts
}

TEST(PolygonTest, RingContainsHalfOpenMatchesPolygon) {
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  std::vector<double> xs, ys;
  for (const Point& p : l.ring()) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  for (double x = -0.5; x <= 2.5; x += 0.125) {
    for (double y = -0.5; y <= 2.5; y += 0.125) {
      const Point p{x, y};
      EXPECT_EQ(l.ContainsHalfOpen(p),
                RingContainsHalfOpen(xs.data(), ys.data(), xs.size(), p))
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(PolygonTest, ContainsNonConvex) {
  // L-shape.
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l.Contains({0.5, 1.5}));
  EXPECT_TRUE(l.Contains({1.5, 0.5}));
  EXPECT_FALSE(l.Contains({1.5, 1.5}));
  EXPECT_TRUE(l.IsSimple());
  EXPECT_FALSE(l.IsConvex());
}

TEST(PolygonTest, SimpleAndConvex) {
  EXPECT_TRUE(UnitSquare().IsSimple());
  EXPECT_TRUE(UnitSquare().IsConvex());
  // Bowtie: not simple.
  Polygon bow({{0, 0}, {1, 1}, {1, 0}, {0, 1}});
  EXPECT_FALSE(bow.IsSimple());
}

TEST(PolygonTest, InteriorPoint) {
  Point p;
  ASSERT_TRUE(UnitSquare().InteriorPoint(&p));
  EXPECT_TRUE(UnitSquare().Contains(p));
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  ASSERT_TRUE(l.InteriorPoint(&p));
  EXPECT_TRUE(l.Contains(p));
  EXPECT_GT(l.DistanceToBoundary(p), 0.0);
}

TEST(PolygonTest, ClipHalfPlane) {
  // Keep x <= 0.5: a*x + b*y + c <= 0 with a=1, b=0, c=-0.5.
  Polygon clipped = ClipHalfPlane(UnitSquare(), 1.0, 0.0, -0.5);
  EXPECT_NEAR(clipped.Area(), 0.5, 1e-9);
  for (const Point& p : clipped.ring()) EXPECT_LE(p.x, 0.5 + 1e-9);
  // Clip away everything.
  Polygon gone = ClipHalfPlane(UnitSquare(), 1.0, 0.0, 5.0);
  EXPECT_TRUE(gone.empty());
  // Clip away nothing.
  Polygon all = ClipHalfPlane(UnitSquare(), 1.0, 0.0, -5.0);
  EXPECT_NEAR(all.Area(), 1.0, 1e-9);
}

TEST(PolygonTest, ClipHalfPlaneDiagonal) {
  // Keep the region below the main diagonal: y <= x.
  Polygon clipped = ClipHalfPlane(UnitSquare(), -1.0, 1.0, 0.0);
  EXPECT_NEAR(clipped.Area(), 0.5, 1e-9);
}

TEST(PolygonTest, BandAreas) {
  EXPECT_NEAR(AreaInVerticalBand(UnitSquare(), 0.25, 0.75), 0.5, 1e-9);
  EXPECT_NEAR(AreaInVerticalBand(UnitSquare(), -1.0, 2.0), 1.0, 1e-9);
  EXPECT_NEAR(AreaInVerticalBand(UnitSquare(), 2.0, 3.0), 0.0, 1e-9);
  EXPECT_NEAR(AreaInVerticalBand(UnitSquare(), 0.75, 0.25), 0.0, 1e-9);
  EXPECT_NEAR(AreaInHorizontalBand(UnitSquare(), 0.0, 0.1), 0.1, 1e-9);
  // Non-convex: the L-shape, band over its notch.
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_NEAR(AreaInVerticalBand(l, 1.0, 2.0), 1.0, 1e-9);
  EXPECT_NEAR(AreaInHorizontalBand(l, 1.0, 2.0), 1.0, 1e-9);
}

TEST(TriangleTest, ContainsAndArea) {
  Triangle t({0, 0}, {4, 0}, {0, 4});
  EXPECT_DOUBLE_EQ(t.Area(), 8.0);
  EXPECT_TRUE(t.Contains({1, 1}));
  EXPECT_TRUE(t.Contains({0, 0}));   // vertex
  EXPECT_TRUE(t.Contains({2, 2}));   // hypotenuse
  EXPECT_FALSE(t.Contains({3, 3}));
}

TEST(TriangleTest, EnsureCCW) {
  Triangle t({0, 0}, {0, 4}, {4, 0});
  EXPECT_LT(t.SignedArea(), 0.0);
  t.EnsureCCW();
  EXPECT_GT(t.SignedArea(), 0.0);
}

TEST(TriangleTest, OverlapInterior) {
  Triangle a({0, 0}, {4, 0}, {0, 4});
  Triangle b({1, 1}, {5, 1}, {1, 5});
  EXPECT_TRUE(a.OverlapsInterior(b));
  // Edge-adjacent triangles do not overlap in the interior.
  Triangle c({4, 0}, {4, 4}, {0, 4});
  EXPECT_FALSE(a.OverlapsInterior(c));
  // Disjoint.
  Triangle d({10, 10}, {11, 10}, {10, 11});
  EXPECT_FALSE(a.OverlapsInterior(d));
}

}  // namespace
}  // namespace dtree::geom
