// Tests for the semantic region cache (broadcast/region_cache.h), the
// mobility workload (workload/mobility.h), and their wiring into the
// experiment and fleet drivers.
//
// The load-bearing properties:
//  * a cache hit may never disagree with a forced cold tune-in
//    (CacheOptions::verify_hits turns every hit into a differential);
//  * cache-off and mobility-off runs are bit-identical to today;
//  * LRU order, the byte budget and epoch invalidation are deterministic;
//  * version skew flushes the cache, loss/corruption never do, and churn
//    wipes it;
//  * results stay bitwise identical across thread counts with both
//    features enabled.

#include <cmath>
#include <string>
#include <vector>

#include "broadcast/experiment.h"
#include "broadcast/fleet.h"
#include "broadcast/region_cache.h"
#include "broadcast/trace.h"
#include "dtree/dtree.h"
#include "test_util.h"
#include "workload/datasets.h"
#include "workload/mobility.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

geom::Polygon Square(double x0, double y0, double s) {
  return geom::Polygon({{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s},
                        {x0, y0 + s}});
}

/// In-memory sink keeping full (unserialized) QueryTrace copies.
class CollectingTraceSink : public TraceSink {
 public:
  void Consume(const QueryTrace& trace) override {
    traces.push_back(trace);
  }
  std::vector<QueryTrace> traces;
};

// ---------------------------------------------------------------------
// RegionCache unit behavior.

TEST(RegionCacheTest, LruEvictionOrderIsDeterministic) {
  CacheOptions copt;
  copt.enabled = true;
  copt.byte_budget = 2 * RegionCache::EntryBytes(Square(0, 0, 10));
  RegionCache cache(copt);

  // Disjoint cells for regions 0 and 1; region 0 becomes MRU via a hit,
  // so inserting region 2 must evict region 1 (the LRU), never region 0.
  EXPECT_EQ(cache.Insert(Square(0, 0, 10), 0, 0), 0);
  EXPECT_EQ(cache.Insert(Square(20, 0, 10), 1, 0), 0);
  ASSERT_NE(cache.Lookup({5, 5}), nullptr);  // region 0 -> MRU
  EXPECT_EQ(cache.Insert(Square(40, 0, 10), 2, 0), 1);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.Lookup({25, 5}), nullptr);  // region 1 is gone
  const RegionCache::Entry* e0 = cache.Lookup({5, 5});
  ASSERT_NE(e0, nullptr);
  EXPECT_EQ(e0->region, 0);
  const RegionCache::Entry* e2 = cache.Lookup({45, 5});
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->region, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(RegionCacheTest, ReinsertRefreshesWithoutDoubleCountingBytes) {
  CacheOptions copt;
  copt.enabled = true;
  copt.byte_budget = 1 << 20;
  RegionCache cache(copt);
  cache.Insert(Square(0, 0, 10), 0, 0);
  const size_t once = cache.bytes();
  cache.Insert(Square(0, 0, 10), 0, 0);
  EXPECT_EQ(cache.bytes(), once);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(RegionCacheTest, ByteBudgetIsEnforced) {
  const size_t entry = RegionCache::EntryBytes(Square(0, 0, 10));
  CacheOptions copt;
  copt.enabled = true;
  copt.byte_budget = 3 * entry;
  RegionCache cache(copt);
  for (int r = 0; r < 10; ++r) {
    cache.Insert(Square(r * 20.0, 0, 10), r, 0);
    EXPECT_LE(cache.bytes(), copt.byte_budget);
  }
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.stats().evictions, 7);

  // A cell larger than the whole budget is dropped immediately.
  CacheOptions tiny = copt;
  tiny.byte_budget = entry - 1;
  RegionCache small(tiny);
  EXPECT_EQ(small.Insert(Square(0, 0, 10), 0, 0), 1);
  EXPECT_EQ(small.entries(), 0u);
  EXPECT_EQ(small.bytes(), 0u);
}

TEST(RegionCacheTest, EpochSkewFlushesSameEpochRetains) {
  CacheOptions copt;
  copt.enabled = true;
  RegionCache cache(copt);
  cache.Insert(Square(0, 0, 10), 0, 3);
  cache.Insert(Square(20, 0, 10), 1, 3);
  EXPECT_EQ(cache.epoch(), 3);
  // Same-epoch stamp: a retry under loss keeps the cache intact.
  EXPECT_EQ(cache.OnEpochObserved(3), 0);
  EXPECT_EQ(cache.entries(), 2u);
  // Skew: everything goes.
  EXPECT_EQ(cache.OnEpochObserved(4), 2);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.epoch(), 4);
  EXPECT_EQ(cache.stats().invalidations, 2);
  EXPECT_EQ(cache.Lookup({5, 5}), nullptr);
}

TEST(RegionCacheTest, ClearWipesEntriesWithoutInvalidationStats) {
  CacheOptions copt;
  copt.enabled = true;
  RegionCache cache(copt);
  cache.Insert(Square(0, 0, 10), 0, 1);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 0);
}

TEST(RegionCacheTest, BoundaryPointsNeverHit) {
  CacheOptions copt;
  copt.enabled = true;
  RegionCache cache(copt);
  cache.Insert(Square(0, 0, 10), 0, 0);
  // Interior: a clean hit.
  ASSERT_NE(cache.Lookup({5, 5}), nullptr);
  // Exactly on an edge and on a vertex: inside under the half-open rule
  // or not, the ambiguity band refuses to answer.
  EXPECT_EQ(cache.Lookup({0, 5}), nullptr);
  EXPECT_EQ(cache.Lookup({0, 0}), nullptr);
  // Inside but within boundary_eps of the edge: still a miss.
  EXPECT_EQ(cache.Lookup({copt.boundary_eps * 0.5, 5}), nullptr);
  // Safely past the band: a hit again.
  EXPECT_NE(cache.Lookup({copt.boundary_eps * 10, 5}), nullptr);
  EXPECT_EQ(cache.stats().misses, 3);
}

TEST(RegionCacheTest, ValidateRejectsBadOptions) {
  CacheOptions copt;
  copt.enabled = true;
  copt.byte_budget = 0;
  EXPECT_FALSE(ValidateCacheOptions(copt).ok());
  copt.byte_budget = 1024;
  copt.boundary_eps = -1.0;
  EXPECT_FALSE(ValidateCacheOptions(copt).ok());
  copt.boundary_eps = 0.0;
  EXPECT_TRUE(ValidateCacheOptions(copt).ok());
  CacheOptions off;  // disabled: nothing else is checked
  off.byte_budget = 0;
  EXPECT_TRUE(ValidateCacheOptions(off).ok());
}

// ---------------------------------------------------------------------
// Mobility workload.

TEST(MobilityTest, WalkIsDeterministicPerStream) {
  workload::MobilityOptions mopt;
  mopt.enabled = true;
  mopt.hop_scale = 10.0;
  const geom::BBox area = workload::DefaultServiceArea();
  for (const auto model : {workload::MobilityModel::kGaussianHop,
                           workload::MobilityModel::kRandomWaypoint}) {
    mopt.model = model;
    workload::MobilityState s1, s2;
    Rng r1 = Rng::ForStream(99, workload::kMobilityStreamBase);
    Rng r2 = Rng::ForStream(99, workload::kMobilityStreamBase);
    for (int i = 0; i < 200; ++i) {
      const geom::Point a = workload::MobilityStep(mopt, area, &s1, &r1);
      const geom::Point b = workload::MobilityStep(mopt, area, &s2, &r2);
      EXPECT_EQ(a.x, b.x);  // bitwise
      EXPECT_EQ(a.y, b.y);
      EXPECT_GE(a.x, area.min_x);
      EXPECT_LE(a.x, area.max_x);
      EXPECT_GE(a.y, area.min_y);
      EXPECT_LE(a.y, area.max_y);
    }
  }
}

TEST(MobilityTest, WaypointStepsAreBounded) {
  workload::MobilityOptions mopt;
  mopt.enabled = true;
  mopt.model = workload::MobilityModel::kRandomWaypoint;
  mopt.waypoint_step = 25.0;
  const geom::BBox area = workload::DefaultServiceArea();
  workload::MobilityState s;
  Rng rng = Rng::ForStream(3, workload::kMobilityStreamBase);
  geom::Point prev = workload::MobilityStep(mopt, area, &s, &rng);
  for (int i = 0; i < 500; ++i) {
    const geom::Point next = workload::MobilityStep(mopt, area, &s, &rng);
    EXPECT_LE(geom::Distance(prev, next), mopt.waypoint_step + 1e-9);
    prev = next;
  }
}

TEST(MobilityTest, ValidateRejectsBadOptions) {
  workload::MobilityOptions mopt;
  mopt.enabled = true;
  mopt.hop_scale = 0.0;
  EXPECT_FALSE(workload::ValidateMobilityOptions(mopt).ok());
  mopt.model = workload::MobilityModel::kRandomWaypoint;
  mopt.hop_scale = 10.0;
  mopt.waypoint_step = -1.0;
  EXPECT_FALSE(workload::ValidateMobilityOptions(mopt).ok());
  workload::MobilityOptions off;  // disabled: nothing else is checked
  off.hop_scale = 0.0;
  EXPECT_TRUE(workload::ValidateMobilityOptions(off).ok());
}

// ---------------------------------------------------------------------
// Experiment driver wiring.

struct ExperimentRig {
  workload::Dataset dataset;
  core::DTree tree;

  ExperimentRig()
      : dataset(workload::MakeUniformDataset().value()),
        tree(Build(dataset.subdivision)) {}

  static core::DTree Build(const sub::Subdivision& s) {
    core::DTree::Options topt;
    topt.packet_capacity = 256;
    return core::DTree::Build(s, topt).value();
  }
};

ExperimentOptions MakeMobileCacheOptions() {
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 4096;
  opt.seed = 17;
  opt.mobility.enabled = true;
  opt.mobility.model = workload::MobilityModel::kGaussianHop;
  // UNIFORM has 1000 cells in a 1000x1000 area (~30-unit cells): a
  // 4-unit hop mostly stays inside the current Voronoi cell.
  opt.mobility.hop_scale = 4.0;
  opt.cache.enabled = true;
  opt.cache.verify_hits = true;
  return opt;
}

TEST(RegionCacheExperimentTest, CacheOffRunsAreUntouchedBitwise) {
  ExperimentRig rig;
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 2000;
  opt.seed = 5;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.1;
  opt.loss.seed = 9;

  std::string jsonl_a;
  JsonlTraceSink sink_a(&jsonl_a);
  opt.trace_sink = &sink_a;
  auto a = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  // Toggling every cache knob except `enabled` must change nothing: the
  // disabled feature is inert, down to the serialized trace bytes.
  std::string jsonl_b;
  JsonlTraceSink sink_b(&jsonl_b);
  opt.trace_sink = &sink_b;
  opt.cache.byte_budget = 1;
  opt.cache.verify_hits = true;
  opt.cache.boundary_eps = 123.0;
  auto b = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a.value().mean_latency, b.value().mean_latency);  // bitwise
  EXPECT_EQ(a.value().mean_tuning_total, b.value().mean_tuning_total);
  EXPECT_EQ(a.value().mean_retries, b.value().mean_retries);
  EXPECT_EQ(a.value().cache_hits, 0);
  EXPECT_EQ(a.value().cache_misses, 0);
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_EQ(jsonl_a.find("cache_hit"), std::string::npos);
}

TEST(RegionCacheExperimentTest, EveryHitSurvivesTheColdDifferential) {
  // verify_hits replays each hit against a forced cold tune-in inside the
  // driver; any region/epoch divergence fails the run. Exercise it across
  // the fault schedules the ISSUE names: loss, corruption, and both.
  ExperimentRig rig;
  std::vector<LossOptions> configs(4);
  configs[1].model = LossModel::kIid;
  configs[1].loss_rate = 0.2;
  configs[1].seed = 31;
  configs[2].corruption.model = CorruptionModel::kIidBits;
  configs[2].corruption.bit_error_rate = 2e-5;
  configs[2].corruption.seed = 32;
  configs[3].model = LossModel::kGilbertElliott;
  configs[3].loss_bad = 0.8;
  configs[3].seed = 33;
  configs[3].corruption.model = CorruptionModel::kIidBits;
  configs[3].corruption.bit_error_rate = 1e-5;
  configs[3].corruption.seed = 34;
  configs[3].fallback_scan_cycles = 2;

  for (size_t cfg = 0; cfg < configs.size(); ++cfg) {
    ExperimentOptions opt = MakeMobileCacheOptions();
    opt.num_queries = 2048;
    opt.loss = configs[cfg];
    auto r = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
    ASSERT_TRUE(r.ok()) << "cfg=" << cfg << ": " << r.status().ToString();
    EXPECT_GT(r.value().cache_hits, 0) << "cfg=" << cfg;
    EXPECT_EQ(r.value().cache_hits + r.value().cache_misses,
              opt.num_queries);
  }
}

TEST(RegionCacheExperimentTest, SmallHopsHitOftenAndSaveTuning) {
  ExperimentRig rig;
  ExperimentOptions on = MakeMobileCacheOptions();
  auto r_on = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, on);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();

  ExperimentOptions off = on;
  off.cache.enabled = false;
  auto r_off =
      RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, off);
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();

  const auto& von = r_on.value();
  const double hit_rate = static_cast<double>(von.cache_hits) /
                          static_cast<double>(on.num_queries);
  EXPECT_GT(hit_rate, 0.5);
  // Identical query points (the walk's streams don't depend on the
  // cache), so the tuning saved is exactly the hits' worth.
  EXPECT_LT(von.mean_tuning_total, r_off.value().mean_tuning_total);
  EXPECT_LT(von.mean_latency, r_off.value().mean_latency);
}

TEST(RegionCacheExperimentTest, HitTracesCarryZeroTuningAndOneEvent) {
  ExperimentRig rig;
  ExperimentOptions opt = MakeMobileCacheOptions();
  opt.num_queries = 1024;
  CollectingTraceSink sink;
  opt.trace_sink = &sink;
  auto r = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(sink.traces.size(), static_cast<size_t>(opt.num_queries));
  int64_t hit_lines = 0;
  for (const QueryTrace& qt : sink.traces) {
    if (!qt.cache_hit) continue;
    ++hit_lines;
    EXPECT_EQ(qt.latency, 0.0);
    EXPECT_EQ(qt.tuning_total, 0);
    ASSERT_EQ(qt.events.size(), 1u);
    EXPECT_EQ(qt.events[0].kind, TraceEventKind::kCacheHit);
  }
  EXPECT_EQ(hit_lines, r.value().cache_hits);
}

TEST(RegionCacheExperimentTest, ThreadCountInvarianceWithCacheAndWalk) {
  ExperimentRig rig;
  ExperimentOptions opt = MakeMobileCacheOptions();
  opt.num_queries = 2048;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.15;
  opt.loss.seed = 77;
  opt.num_threads = 1;
  auto ref = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (int threads : {4, 8}) {
    opt.num_threads = threads;
    auto r = RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().mean_latency, ref.value().mean_latency);  // bitwise
    EXPECT_EQ(r.value().mean_tuning_total, ref.value().mean_tuning_total);
    EXPECT_EQ(r.value().cache_hits, ref.value().cache_hits);
    EXPECT_EQ(r.value().cache_misses, ref.value().cache_misses);
    EXPECT_EQ(r.value().cache_evictions, ref.value().cache_evictions);
    EXPECT_EQ(r.value().cache_invalidations,
              ref.value().cache_invalidations);
  }
}

TEST(RegionCacheExperimentTest, OptionValidationPropagates) {
  ExperimentRig rig;
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 10;
  opt.cache.enabled = true;
  opt.cache.byte_budget = 0;
  EXPECT_FALSE(
      RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt).ok());
  opt.cache.byte_budget = 1024;
  opt.mobility.enabled = true;
  opt.mobility.hop_scale = -2.0;
  EXPECT_FALSE(
      RunExperiment(rig.tree, rig.dataset.subdivision, nullptr, opt).ok());
}

// ---------------------------------------------------------------------
// Fleet engine wiring.

FleetOptions MakeMobileCacheFleetOptions() {
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 128;
  fopt.sim_cycles = 6.0;
  fopt.queries_per_cycle = 2.0;
  fopt.seed = 23;
  fopt.mobility.enabled = true;
  fopt.mobility.model = workload::MobilityModel::kGaussianHop;
  fopt.mobility.hop_scale = 4.0;
  fopt.cache.enabled = true;
  fopt.cache.verify_hits = true;
  return fopt;
}

TEST(RegionCacheFleetTest, CachePersistsWithinGenerationAndDiesOnChurn) {
  ExperimentRig rig;
  FleetOptions fopt = MakeMobileCacheFleetOptions();
  auto keep = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(keep.ok()) << keep.status().ToString();
  EXPECT_TRUE(keep.value().cache_enabled);
  EXPECT_GT(keep.value().cache_hits, 0);
  EXPECT_EQ(keep.value().cache_hits + keep.value().cache_misses,
            keep.value().queries);

  // churn = 1: every completed query retires its session, so no client
  // ever queries a warm cache — hits must be exactly zero.
  fopt.churn = 1.0;
  auto wipe = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(wipe.ok()) << wipe.status().ToString();
  EXPECT_EQ(wipe.value().cache_hits, 0);
  EXPECT_EQ(wipe.value().cache_misses, wipe.value().queries);
}

TEST(RegionCacheFleetTest, HitQueriesNeverTuneIn) {
  ExperimentRig rig;
  FleetOptions fopt = MakeMobileCacheFleetOptions();
  CollectingTraceSink sink;
  fopt.trace_sink = &sink;
  auto r = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t hits = 0;
  for (const QueryTrace& qt : sink.traces) {
    if (!qt.cache_hit) continue;
    ++hits;
    EXPECT_EQ(qt.latency, 0.0);
    EXPECT_EQ(qt.tuning_total, 0);
    ASSERT_EQ(qt.events.size(), 1u);
    EXPECT_EQ(qt.events[0].kind, TraceEventKind::kCacheHit);
  }
  EXPECT_EQ(hits, r.value().cache_hits);
  EXPECT_GT(hits, 0);
}

TEST(RegionCacheFleetTest, ThreadCountInvarianceWithCacheAndWalk) {
  ExperimentRig rig;
  FleetOptions fopt = MakeMobileCacheFleetOptions();
  fopt.churn = 0.2;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.1;
  fopt.loss.seed = 41;
  fopt.num_threads = 1;
  auto ref = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (int threads : {4, 8}) {
    fopt.num_threads = threads;
    auto r = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().queries, ref.value().queries);
    EXPECT_EQ(r.value().mean_latency, ref.value().mean_latency);  // bitwise
    EXPECT_EQ(r.value().mean_tuning_total, ref.value().mean_tuning_total);
    EXPECT_EQ(r.value().cache_hits, ref.value().cache_hits);
    EXPECT_EQ(r.value().cache_misses, ref.value().cache_misses);
    EXPECT_EQ(r.value().cache_evictions, ref.value().cache_evictions);
    EXPECT_EQ(r.value().cache_invalidations,
              ref.value().cache_invalidations);
  }
}

TEST(RegionCacheFleetTest, EpochSkewFlushesTheCache) {
  // Same geometry under two epoch ids: the answers never change (so
  // verify_hits stays a strict differential) but every client observing
  // the switch must flush.
  ExperimentRig rig;
  FleetOptions fopt = MakeMobileCacheFleetOptions();
  fopt.sim_cycles = 8.0;
  std::vector<FleetEpoch> epochs = {{&rig.tree, &rig.dataset.subdivision,
                                     /*epoch=*/0, /*cycles=*/2},
                                    {&rig.tree, &rig.dataset.subdivision,
                                     /*epoch=*/7, /*cycles=*/1}};
  auto r = RunFleetVersioned(epochs, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().cache_hits, 0);
  EXPECT_GT(r.value().cache_invalidations, 0);
}

TEST(RegionCacheFleetTest, CorruptionDoesNotInvalidate) {
  // A mangled frame carries no trustworthy epoch evidence: with a single
  // epoch on the air, heavy corruption must produce zero invalidations.
  ExperimentRig rig;
  FleetOptions fopt = MakeMobileCacheFleetOptions();
  fopt.loss.corruption.model = CorruptionModel::kIidBits;
  fopt.loss.corruption.bit_error_rate = 5e-5;
  fopt.loss.corruption.seed = 55;
  auto r = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().total_corrupted_packets, 0);
  EXPECT_EQ(r.value().cache_invalidations, 0);
  EXPECT_GT(r.value().cache_hits, 0);
}

TEST(RegionCacheFleetTest, CacheOffFleetIsUntouchedBitwise) {
  ExperimentRig rig;
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 64;
  fopt.sim_cycles = 3.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.1;
  fopt.seed = 61;

  std::string jsonl_a;
  JsonlTraceSink sink_a(&jsonl_a);
  fopt.trace_sink = &sink_a;
  auto a = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  std::string jsonl_b;
  JsonlTraceSink sink_b(&jsonl_b);
  fopt.trace_sink = &sink_b;
  fopt.cache.byte_budget = 1;  // inert while enabled stays false
  fopt.cache.verify_hits = true;
  auto b = RunFleet(rig.tree, rig.dataset.subdivision, fopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a.value().mean_latency, b.value().mean_latency);  // bitwise
  EXPECT_EQ(a.value().mean_tuning_total, b.value().mean_tuning_total);
  EXPECT_EQ(a.value().queries, b.value().queries);
  EXPECT_FALSE(a.value().cache_enabled);
  EXPECT_EQ(a.value().cache_hits, 0);
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_EQ(jsonl_a.find("cache_hit"), std::string::npos);
}

TEST(RegionCacheFleetTest, OptionValidationPropagates) {
  ExperimentRig rig;
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.cache.enabled = true;
  fopt.cache.byte_budget = 0;
  EXPECT_FALSE(RunFleet(rig.tree, rig.dataset.subdivision, fopt).ok());
  fopt.cache.byte_budget = 1024;
  fopt.mobility.enabled = true;
  fopt.mobility.hop_scale = 0.0;
  EXPECT_FALSE(RunFleet(rig.tree, rig.dataset.subdivision, fopt).ok());
}

}  // namespace
}  // namespace dtree::bcast
