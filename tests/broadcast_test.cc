#include "broadcast/channel.h"
#include "broadcast/experiment.h"
#include "broadcast/pager.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

TEST(PagerTest, TopDownSharesParentPacket) {
  // Root (10B) + two children (10B each) all fit in one 64B packet.
  PagingInput input;
  input.sizes = {10, 10, 10};
  input.parent = {-1, 0, 0};
  input.is_leaf = {false, true, true};
  auto r = TopDownPage(input, 64, /*merge_leaf_packets=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_packets, 1);
  EXPECT_EQ(r.value().spans[0].offset, 0u);
  EXPECT_EQ(r.value().spans[1].offset, 10u);
  EXPECT_EQ(r.value().spans[2].offset, 20u);
  EXPECT_EQ(r.value().used_bytes, 30u);
}

TEST(PagerTest, OverflowOpensNewPacket) {
  PagingInput input;
  input.sizes = {30, 30, 30};
  input.parent = {-1, 0, 0};
  input.is_leaf = {false, true, true};
  auto r = TopDownPage(input, 64, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_packets, 2);
  EXPECT_EQ(r.value().spans[1].first_packet, 0);  // fits with root
  EXPECT_EQ(r.value().spans[2].first_packet, 1);  // overflows
}

TEST(PagerTest, LargeNodeSpansPackets) {
  PagingInput input;
  input.sizes = {150, 10};
  input.parent = {-1, 0};
  input.is_leaf = {false, true};
  auto r = TopDownPage(input, 64, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().spans[0].num_packets, 3);  // 64 + 64 + 22
  // Child shares the large node's last, partially-filled packet.
  EXPECT_EQ(r.value().spans[1].first_packet, 2);
  EXPECT_EQ(r.value().spans[1].offset, 22u);
  EXPECT_EQ(r.value().num_packets, 3);
}

TEST(PagerTest, LeafMergingRespectsForwardOrder) {
  // Level structure engineered so naive merging would move the last leaf
  // packet before its parent:
  //   node0 (60B root), node1 (60B leaf), node2 (60B internal),
  //   node3 (60B leaf child of node2)
  PagingInput input;
  input.sizes = {60, 20, 60, 20};
  input.parent = {-1, 0, 0, 2};
  input.is_leaf = {false, true, false, true};
  auto r = TopDownPage(input, 64, /*merge_leaf_packets=*/true);
  ASSERT_TRUE(r.ok());
  // node3's packet may only merge into a packet at/after node2's.
  EXPECT_GE(r.value().spans[3].first_packet,
            r.value().spans[2].last_packet());
}

TEST(PagerTest, LeafMergingSavesSpace) {
  // Many small leaves in their own packets after a big root.
  PagingInput input;
  input.sizes = {60, 10, 10, 10, 10};
  input.parent = {-1, 0, 0, 0, 0};
  input.is_leaf = {false, true, true, true, true};
  auto merged = TopDownPage(input, 64, true);
  auto plain = TopDownPage(input, 64, false);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_LE(merged.value().num_packets, plain.value().num_packets);
}

TEST(PagerTest, RejectsMalformedInput) {
  PagingInput input;
  input.sizes = {10, 10};
  input.parent = {1, -1};  // child precedes parent
  input.is_leaf = {true, false};
  EXPECT_FALSE(TopDownPage(input, 64, false).ok());
  input.parent = {-1, 0};
  input.sizes = {0, 10};  // zero-sized node
  EXPECT_FALSE(TopDownPage(input, 64, false).ok());
  input.sizes = {10, 10};
  EXPECT_FALSE(TopDownPage(input, 0, false).ok());
}

TEST(PagerTest, GreedyPacking) {
  auto r = GreedyPage({30, 30, 30, 100, 10}, 64);
  ASSERT_TRUE(r.ok());
  // [30+30][30][100 -> 64+36][10 with the 36]
  EXPECT_EQ(r.value().spans[0].first_packet, 0);
  EXPECT_EQ(r.value().spans[1].first_packet, 0);
  EXPECT_EQ(r.value().spans[2].first_packet, 1);
  EXPECT_EQ(r.value().spans[3].first_packet, 2);
  EXPECT_EQ(r.value().spans[3].num_packets, 2);
  EXPECT_EQ(r.value().spans[4].first_packet, 3);
  EXPECT_EQ(r.value().num_packets, 4);
}

TEST(ChannelTest, LayoutBasics) {
  ChannelOptions o;
  o.packet_capacity = 128;  // bucket = 8 packets
  o.m = 2;
  auto ch_r = BroadcastChannel::Create(/*index_packets=*/4,
                                       /*num_regions=*/10, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  EXPECT_EQ(ch.bucket_packets(), 8);
  EXPECT_EQ(ch.data_packets(), 80);
  EXPECT_EQ(ch.cycle_packets(), 88);
  EXPECT_EQ(ch.IndexSegmentStart(0), 0);
  // Segment 1 after 4 index packets + 5 buckets * 8.
  EXPECT_EQ(ch.IndexSegmentStart(1), 44);
  EXPECT_EQ(ch.BucketStart(0), 4);
  EXPECT_EQ(ch.BucketStart(5), 48);
  EXPECT_DOUBLE_EQ(ch.OptimalLatency(), 40.0);
}

TEST(ChannelTest, OptimalM) {
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  auto ch_r = BroadcastChannel::Create(/*index_packets=*/4,
                                       /*num_regions=*/100, o);
  ASSERT_TRUE(ch_r.ok());
  // m* = sqrt(100/4) = 5.
  EXPECT_EQ(ch_r.value().m(), 5);
}

TEST(ChannelTest, SimulateProtocol) {
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  o.m = 2;
  auto ch_r = BroadcastChannel::Create(2, 4, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  // Cycle: [I0 I1][B0 B1][I0 I1][B2 B3] -> 8 packets.
  ASSERT_EQ(ch.cycle_packets(), 8);
  ProbeTrace trace;
  trace.region = 2;
  trace.packets = {0, 1};
  // Arrive at t=0.5: probe packet 1 (finishes at 2), next index at 4,
  // reads 4 and 5, bucket 2 is at position 6, done at 7.
  auto out_r = ch.Simulate(trace, 0.5);
  ASSERT_TRUE(out_r.ok());
  EXPECT_DOUBLE_EQ(out_r.value().latency, 6.5);
  EXPECT_EQ(out_r.value().tuning_probe, 1);
  EXPECT_EQ(out_r.value().tuning_index, 2);
  EXPECT_EQ(out_r.value().tuning_data, 1);
}

TEST(ChannelTest, SimulateWrapsCycle) {
  ChannelOptions o;
  o.packet_capacity = 1024;
  o.m = 1;
  auto ch_r = BroadcastChannel::Create(2, 4, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  // Cycle: [I0 I1][B0 B1 B2 B3] -> 6 packets. Arrive near the end.
  ProbeTrace trace;
  trace.region = 0;
  trace.packets = {0};
  auto out_r = ch.Simulate(trace, 5.25);
  ASSERT_TRUE(out_r.ok());
  // Probe packet 6 (pos 0 of next cycle, finishes 7), index at 6..:
  // next index start >= 7 is position 12; read packet 12; bucket 0 at 14,
  // done 15. Latency = 15 - 5.25.
  EXPECT_DOUBLE_EQ(out_r.value().latency, 15.0 - 5.25);
}

TEST(ChannelTest, NoIndexBaseline) {
  ChannelOptions o;
  o.packet_capacity = 1024;
  o.m = 1;
  auto ch_r = BroadcastChannel::Create(0, 4, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  auto out = ch.SimulateNoIndex(2, 0.0);
  // Pure data cycle [B0..B3]; bucket 2 at position 2, done at 3. B0 began
  // transmitting exactly at the arrival instant, so listening starts at
  // packet 1: only B1 is listened through before the bucket.
  EXPECT_DOUBLE_EQ(out.latency, 3.0);
  EXPECT_EQ(out.tuning_index, 1);
  EXPECT_EQ(out.tuning_data, 1);
}

TEST(ChannelTest, ProbeWaitsForNextPacketStart) {
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  o.m = 2;
  auto ch_r = BroadcastChannel::Create(2, 4, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  // Cycle: [I0 I1][B0 B1][I0 I1][B2 B3] -> 8 packets.
  ProbeTrace trace;
  trace.region = 2;
  trace.packets = {0, 1};

  // Arrival exactly on a packet boundary: packet 0 is already in flight,
  // so the probe is packet 1 (finishes at 2), index at 4..5, bucket 2 at
  // 6, done at 7.
  auto at0 = ch.Simulate(trace, 0.0);
  ASSERT_TRUE(at0.ok());
  EXPECT_DOUBLE_EQ(at0.value().latency, 7.0);
  EXPECT_EQ(at0.value().tuning_probe, 1);
  EXPECT_EQ(at0.value().tuning_index, 2);
  EXPECT_EQ(at0.value().tuning_data, 1);

  // Integer arrival mid-cycle: probe packet 3, second index copy at 4..5,
  // bucket 2 at 6, done at 7.
  auto at2 = ch.Simulate(trace, 2.0);
  ASSERT_TRUE(at2.ok());
  EXPECT_DOUBLE_EQ(at2.value().latency, 5.0);

  // Fractional arrival inside the last packet wraps into the next cycle:
  // probe packet 8, index at 12..13, bucket at 14, done at 15.
  auto frac = ch.Simulate(trace, 7.5);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(frac.value().latency, 7.5);

  // Arrival exactly at the last packet's start: that packet is in flight,
  // so the client probes packet 8 — same path as above, latency 8.0. The
  // old ceil(arrival) would have (impossibly) read packet 7 itself.
  auto last = ch.Simulate(trace, 7.0);
  ASSERT_TRUE(last.ok());
  EXPECT_DOUBLE_EQ(last.value().latency, 8.0);
}

TEST(ChannelTest, BackwardPointerEarlyInFirstCycle) {
  // A DAG-shaped index can point backward within the segment. Exercise the
  // backward re-tune path as early as possible in cycle 0 — the regime
  // where next_segment_start's base argument (p - packet_id) is smallest
  // and a sign bug would bite.
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  o.m = 2;
  auto ch_r = BroadcastChannel::Create(4, 4, o);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  // Cycle: [I0..I3][B0 B1][I0..I3][B2 B3] -> 12 packets.
  ASSERT_EQ(ch.cycle_packets(), 12);
  ProbeTrace trace;
  trace.region = 1;
  trace.packets = {3, 1};  // backward jump 3 -> 1
  auto out = ch.Simulate(trace, 0.0);
  ASSERT_TRUE(out.ok());
  // Probe packet 1 (pos 2); segment at 6: read 6+3=9; packet 1 of that
  // segment already passed, so wait for the next repetition at 12 and
  // read 12+1=13; bucket 1 next occurs at 12+5=17, done 18.
  EXPECT_DOUBLE_EQ(out.value().latency, 18.0);
  EXPECT_EQ(out.value().tuning_index, 2);
  EXPECT_EQ(out.value().tuning_data, 1);
}

TEST(ChannelTest, RejectsBadInput) {
  ChannelOptions o;
  o.packet_capacity = 0;
  EXPECT_FALSE(BroadcastChannel::Create(1, 1, o).ok());
  o.packet_capacity = 64;
  EXPECT_FALSE(BroadcastChannel::Create(1, 0, o).ok());
  EXPECT_FALSE(BroadcastChannel::Create(-1, 5, o).ok());
}

TEST(TraceValidationTest, CatchesBackwardJumps) {
  ProbeTrace t;
  t.region = 0;
  t.packets = {3, 1};
  EXPECT_FALSE(ValidateTrace(t, 10, 5).ok());
  t.packets = {1, 3};
  EXPECT_OK(ValidateTrace(t, 10, 5));
  t.packets = {11};
  EXPECT_FALSE(ValidateTrace(t, 10, 5).ok());
  t.region = 7;
  t.packets = {};
  EXPECT_FALSE(ValidateTrace(t, 10, 5).ok());
}

TEST(ExperimentTest, DTreeEndToEnd) {
  const sub::Subdivision sub = test::RandomVoronoi(60, 23);
  core::DTree::Options topts;
  topts.packet_capacity = 256;
  auto tree_r = core::DTree::Build(sub, topts);
  ASSERT_TRUE(tree_r.ok());
  const sub::PointLocator oracle(sub);
  ExperimentOptions eopts;
  eopts.packet_capacity = 256;
  eopts.num_queries = 2000;
  auto res_r = RunExperiment(tree_r.value(), sub, &oracle, eopts);
  ASSERT_TRUE(res_r.ok()) << res_r.status().ToString();
  const ExperimentResult& res = res_r.value();
  EXPECT_GT(res.mean_latency, res.optimal_latency);
  EXPECT_GT(res.normalized_latency, 1.0);
  EXPECT_LT(res.normalized_latency, 3.0);
  EXPECT_GT(res.mean_tuning_index, 0.0);
  // The whole point of air indexing: tuning far below listening.
  EXPECT_LT(res.mean_tuning_total, res.mean_tuning_noindex / 5.0);
  EXPECT_GT(res.indexing_efficiency, 0.0);
}

TEST(ExperimentTest, QueryDistributionCoversRegions) {
  const sub::Subdivision sub = test::ClusteredVoronoi(40, 29);
  Rng rng(1);
  const sub::PointLocator oracle(sub);
  auto sampler_r =
      QuerySampler::Create(sub, QueryDistribution::kUniformRegion, {});
  ASSERT_TRUE(sampler_r.ok());
  std::set<int> hit;
  for (int i = 0; i < 2000; ++i) {
    const geom::Point p = sampler_r.value().Draw(&rng);
    EXPECT_TRUE(sub.service_area().Contains(p));
    hit.insert(oracle.Locate(p));
  }
  // Uniform-over-regions must reach essentially every region.
  EXPECT_GE(static_cast<int>(hit.size()), 38);
}

}  // namespace
}  // namespace dtree::bcast
