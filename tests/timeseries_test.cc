// TimeSeries / MinMaxGauge (common/timeseries.h): window indexing as a
// pure function of the timestamp, create-on-first-use instances with
// stable pointers, shard-split determinism of MergeOrdered, and the
// empty / single-sample edge cases of every windowed accessor.

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/timeseries.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

TEST(MinMaxGaugeTest, EmptyReportsZeroEnvelope) {
  MinMaxGauge g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.min(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
}

TEST(MinMaxGaugeTest, SingleSampleEnvelopeIsTheSample) {
  MinMaxGauge g;
  g.Record(-7.5);
  EXPECT_EQ(g.count(), 1u);
  EXPECT_EQ(g.min(), -7.5);
  EXPECT_EQ(g.max(), -7.5);
}

TEST(MinMaxGaugeTest, MergeWithEmptyAndOrderInvariance) {
  MinMaxGauge a;
  a.Record(2.0);
  a.Record(9.0);
  MinMaxGauge empty;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  MinMaxGauge b;
  b.Merge(a);  // empty absorbs a's envelope exactly
  EXPECT_EQ(b.min(), 2.0);
  EXPECT_EQ(b.max(), 9.0);

  MinMaxGauge c;
  c.Record(-1.0);
  MinMaxGauge ab = a;
  ab.Merge(c);
  MinMaxGauge ba = c;
  ba.Merge(a);
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
  EXPECT_EQ(ab.count(), ba.count());
}

TEST(TimeSeriesTest, WindowIndexIsFloorOfScaledTime) {
  TimeSeries ts(100.0);
  EXPECT_EQ(ts.WindowIndex(0.0), 0);
  EXPECT_EQ(ts.WindowIndex(99.999), 0);
  EXPECT_EQ(ts.WindowIndex(100.0), 1);
  EXPECT_EQ(ts.WindowIndex(250.0), 2);
  // Negative timestamps clamp into window 0 (a query issued "before the
  // broadcast started" still lands somewhere deterministic).
  EXPECT_EQ(ts.WindowIndex(-5.0), 0);
}

TEST(TimeSeriesTest, EmptySeriesAccessorsReturnDefaults) {
  TimeSeries ts(10.0);
  EXPECT_TRUE(ts.empty());
  EXPECT_TRUE(ts.Windows().empty());
  EXPECT_EQ(ts.FindCounter("x", 0), nullptr);
  EXPECT_EQ(ts.FindHistogram("x", 0), nullptr);
  EXPECT_EQ(ts.FindGauge("x", 0), nullptr);
  EXPECT_EQ(ts.CounterValue("x", 0), 0u);
  EXPECT_EQ(ts.CounterTotal("x"), 0u);
  EXPECT_EQ(ts.HistogramSumTotal("x"), 0.0);
  EXPECT_EQ(ts.HistogramCountTotal("x"), 0u);
}

TEST(TimeSeriesTest, CreateOnFirstUseAndStablePointers) {
  TimeSeries ts(10.0);
  Counter* c = ts.counter("reads", 3);
  c->Add(2);
  Histogram* h = ts.histogram("latency", 3);
  h->Add(5.0);
  // Touch many other (name, window) pairs; node-based storage must not
  // move the earlier instances.
  for (int w = 0; w < 200; ++w) {
    ts.counter("other", w)->Add(1);
    ts.histogram("more", w)->Add(1.0);
    ts.gauge("depth", w)->Record(static_cast<double>(w));
  }
  EXPECT_EQ(ts.FindCounter("reads", 3), c);
  EXPECT_EQ(ts.FindHistogram("latency", 3), h);
  EXPECT_EQ(c->value(), 2u);
  EXPECT_EQ(ts.CounterValue("reads", 3), 2u);
  EXPECT_EQ(ts.CounterValue("reads", 4), 0u);  // window never written
  EXPECT_EQ(ts.CounterTotal("other"), 200u);
  EXPECT_EQ(ts.HistogramCountTotal("more"), 200u);
  EXPECT_EQ(ts.HistogramSumTotal("more"), 200.0);
}

TEST(TimeSeriesTest, WindowsAreAscendingAndDeduplicated) {
  TimeSeries ts(1.0);
  ts.counter("a", 7)->Add(1);
  ts.histogram("b", 2)->Add(1.0);
  ts.gauge("c", 7)->Record(1.0);  // same window as the counter
  ts.counter("a", 0)->Add(1);
  const std::vector<int64_t> w = ts.Windows();
  EXPECT_EQ(w, (std::vector<int64_t>{0, 2, 7}));
}

TEST(TimeSeriesTest, MergeWithEmptyIsIdentity) {
  TimeSeries ts(5.0);
  ts.counter("n", 1)->Add(4);
  ts.histogram("h", 1)->Add(2.5);
  TimeSeries empty(5.0);
  ts.MergeOrdered(empty);
  EXPECT_EQ(ts.CounterValue("n", 1), 4u);
  EXPECT_EQ(ts.HistogramSumTotal("h"), 2.5);
  TimeSeries fresh(5.0);
  fresh.MergeOrdered(ts);
  EXPECT_EQ(fresh.CounterValue("n", 1), 4u);
  EXPECT_EQ(fresh.FindHistogram("h", 1)->TotalCount(), 1u);
}

TEST(TimeSeriesTest, ShardSplitMergeMatchesSingleSeriesExactly) {
  // The determinism contract: samples split across shards and merged in
  // shard order give the same per-window integer counts and the same
  // count-derived statistics as one series fed everything — and the
  // merge is order-invariant for those statistics.
  const double width = 50.0;
  TimeSeries reference(width);
  std::vector<TimeSeries> shards;
  for (int s = 0; s < 4; ++s) shards.emplace_back(width);
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const double t = rng.Uniform(0.0, 5000.0);
    const double v = std::exp(rng.Uniform(0.0, 8.0));
    const int s = static_cast<int>(rng.UniformInt(0, 3));
    const int64_t w = reference.WindowIndex(t);
    reference.counter("events", w)->Add(1);
    reference.histogram("value", w)->Add(v);
    reference.gauge("load", w)->Record(v);
    shards[static_cast<size_t>(s)].counter("events", w)->Add(1);
    shards[static_cast<size_t>(s)].histogram("value", w)->Add(v);
    shards[static_cast<size_t>(s)].gauge("load", w)->Record(v);
  }
  TimeSeries fwd(width);
  for (const TimeSeries& s : shards) fwd.MergeOrdered(s);
  TimeSeries rev(width);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    rev.MergeOrdered(*it);
  }
  EXPECT_EQ(fwd.Windows(), reference.Windows());
  EXPECT_EQ(rev.Windows(), reference.Windows());
  for (int64_t w : reference.Windows()) {
    ASSERT_EQ(fwd.CounterValue("events", w), reference.CounterValue("events", w));
    ASSERT_EQ(rev.CounterValue("events", w), reference.CounterValue("events", w));
    const Histogram* hr = reference.FindHistogram("value", w);
    const Histogram* hf = fwd.FindHistogram("value", w);
    const Histogram* hv = rev.FindHistogram("value", w);
    ASSERT_NE(hf, nullptr);
    ASSERT_NE(hv, nullptr);
    ASSERT_EQ(hf->TotalCount(), hr->TotalCount());
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      ASSERT_EQ(hf->BucketCount(b), hr->BucketCount(b));
      ASSERT_EQ(hv->BucketCount(b), hr->BucketCount(b));
    }
    // Percentiles and gauge envelopes: bit-identical across merge orders.
    EXPECT_EQ(hf->Percentile(0.99), hr->Percentile(0.99));
    EXPECT_EQ(hv->Percentile(0.99), hr->Percentile(0.99));
    EXPECT_EQ(hf->Min(), hr->Min());
    EXPECT_EQ(hf->Max(), hr->Max());
    const MinMaxGauge* gr = reference.FindGauge("load", w);
    const MinMaxGauge* gf = fwd.FindGauge("load", w);
    const MinMaxGauge* gv = rev.FindGauge("load", w);
    ASSERT_NE(gf, nullptr);
    ASSERT_NE(gv, nullptr);
    EXPECT_EQ(gf->min(), gr->min());
    EXPECT_EQ(gf->max(), gr->max());
    EXPECT_EQ(gv->min(), gr->min());
    EXPECT_EQ(gv->max(), gr->max());
    EXPECT_EQ(gf->count(), gr->count());
  }
  // Fixed shard order additionally pins the floating-point sums.
  EXPECT_EQ(fwd.HistogramSumTotal("value"), [&] {
    TimeSeries again(width);
    for (const TimeSeries& s : shards) again.MergeOrdered(s);
    return again.HistogramSumTotal("value");
  }());
}

TEST(TimeSeriesTest, SingleSampleWindowEdgeCases) {
  TimeSeries ts(8.0);
  ts.histogram("lat", ts.WindowIndex(15.9))->Add(42.0);
  const Histogram* h = ts.FindHistogram("lat", 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->TotalCount(), 1u);
  EXPECT_EQ(h->Percentile(0.5), 42.0);
  EXPECT_EQ(h->Percentile(1.0), 42.0);
  EXPECT_EQ(ts.HistogramSumTotal("lat"), 42.0);
  EXPECT_EQ(ts.HistogramCountTotal("lat"), 1u);
}

}  // namespace
}  // namespace dtree
