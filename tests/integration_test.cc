// End-to-end integration sweeps: every index structure runs the full
// experiment pipeline (build -> page -> probe -> channel simulation ->
// metrics) with the brute-force oracle enabled, across datasets, sizes,
// seeds, and packet capacities. This is the test that fails when any part
// of the stack disagrees with any other.

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

struct Cell {
  int n;
  int capacity;
  uint64_t seed;
  bool clustered;
};

class EndToEndTest : public ::testing::TestWithParam<Cell> {};

TEST_P(EndToEndTest, AllIndexesThroughTheFullPipeline) {
  const Cell cell = GetParam();
  const sub::Subdivision sub =
      cell.clustered ? test::ClusteredVoronoi(cell.n, cell.seed)
                     : test::RandomVoronoi(cell.n, cell.seed);
  ASSERT_TRUE(sub.Validate().ok());
  const sub::PointLocator oracle(sub);

  bcast::ExperimentOptions opt;
  opt.packet_capacity = cell.capacity;
  opt.num_queries = 1500;
  opt.seed = cell.seed + 1;

  std::vector<bcast::ExperimentResult> results;

  {
    core::DTree::Options o;
    o.packet_capacity = cell.capacity;
    auto index = core::DTree::Build(sub, o);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto res = bcast::RunExperiment(index.value(), sub, &oracle, opt);
    ASSERT_TRUE(res.ok()) << "d-tree: " << res.status().ToString();
    results.push_back(std::move(res).value());
  }
  {
    baselines::RStarTree::Options o;
    o.packet_capacity = cell.capacity;
    auto index = baselines::RStarTree::Build(sub, o);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto res = bcast::RunExperiment(index.value(), sub, &oracle, opt);
    ASSERT_TRUE(res.ok()) << "r*-tree: " << res.status().ToString();
    results.push_back(std::move(res).value());
  }
  {
    baselines::TrapMap::Options o;
    o.packet_capacity = cell.capacity;
    auto index = baselines::TrapMap::Build(sub, o);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto res = bcast::RunExperiment(index.value(), sub, &oracle, opt);
    ASSERT_TRUE(res.ok()) << "trap-tree: " << res.status().ToString();
    results.push_back(std::move(res).value());
  }
  {
    baselines::TrianTree::Options o;
    o.packet_capacity = cell.capacity;
    auto index = baselines::TrianTree::Build(sub, o);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto res = bcast::RunExperiment(index.value(), sub, &oracle, opt);
    ASSERT_TRUE(res.ok()) << "trian-tree: " << res.status().ToString();
    results.push_back(std::move(res).value());
  }

  for (const auto& r : results) {
    // Physical sanity of every metric.
    EXPECT_GE(r.normalized_latency, 1.0) << r.index_name;
    EXPECT_LT(r.normalized_latency, 50.0) << r.index_name;
    EXPECT_GT(r.mean_tuning_index, 0.0) << r.index_name;
    EXPECT_GT(r.index_packets, 0) << r.index_name;
    EXPECT_LE(r.index_bytes,
              static_cast<size_t>(r.index_packets) * cell.capacity)
        << r.index_name;
    EXPECT_GT(r.indexing_efficiency, 0.0) << r.index_name;
    // Air indexing must beat listening by a wide margin.
    EXPECT_LT(r.mean_tuning_total, r.mean_tuning_noindex) << r.index_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndTest,
    ::testing::Values(Cell{12, 64, 1001, false}, Cell{12, 512, 1002, true},
                      Cell{48, 128, 1003, false}, Cell{48, 2048, 1004, true},
                      Cell{140, 64, 1005, true},
                      Cell{140, 1024, 1006, false}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_cap";
      name += std::to_string(info.param.capacity);
      name += info.param.clustered ? "_clustered" : "_uniform";
      return name;
    });

/// Determinism: the whole pipeline is reproducible from the seed.
TEST(EndToEndTest, DeterministicFromSeed) {
  const sub::Subdivision sub = test::RandomVoronoi(40, 2024);
  core::DTree::Options o;
  o.packet_capacity = 128;
  auto index = core::DTree::Build(sub, o);
  ASSERT_TRUE(index.ok());
  bcast::ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 2000;
  opt.seed = 99;
  auto a = bcast::RunExperiment(index.value(), sub, nullptr, opt);
  auto b = bcast::RunExperiment(index.value(), sub, nullptr, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().mean_latency, b.value().mean_latency);
  EXPECT_DOUBLE_EQ(a.value().mean_tuning_index,
                   b.value().mean_tuning_index);
  opt.seed = 100;
  auto c = bcast::RunExperiment(index.value(), sub, nullptr, opt);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().mean_latency, c.value().mean_latency);
}

/// The paper's headline, as a regression test: on a mid-size workload the
/// D-tree's indexing efficiency beats every baseline.
TEST(EndToEndTest, DTreeWinsIndexingEfficiency) {
  const sub::Subdivision sub = test::ClusteredVoronoi(150, 2025);
  bcast::ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 8000;

  core::DTree::Options dopt;
  dopt.packet_capacity = 256;
  auto dtree = core::DTree::Build(sub, dopt);
  ASSERT_TRUE(dtree.ok());
  auto dres = bcast::RunExperiment(dtree.value(), sub, nullptr, opt);
  ASSERT_TRUE(dres.ok());

  baselines::RStarTree::Options ropt;
  ropt.packet_capacity = 256;
  auto rstar = baselines::RStarTree::Build(sub, ropt);
  ASSERT_TRUE(rstar.ok());
  auto rres = bcast::RunExperiment(rstar.value(), sub, nullptr, opt);
  ASSERT_TRUE(rres.ok());

  baselines::TrapMap::Options topt;
  topt.packet_capacity = 256;
  auto trap = baselines::TrapMap::Build(sub, topt);
  ASSERT_TRUE(trap.ok());
  auto tres = bcast::RunExperiment(trap.value(), sub, nullptr, opt);
  ASSERT_TRUE(tres.ok());

  baselines::TrianTree::Options kopt;
  kopt.packet_capacity = 256;
  auto trian = baselines::TrianTree::Build(sub, kopt);
  ASSERT_TRUE(trian.ok());
  auto kres = bcast::RunExperiment(trian.value(), sub, nullptr, opt);
  ASSERT_TRUE(kres.ok());

  EXPECT_GT(dres.value().indexing_efficiency,
            rres.value().indexing_efficiency);
  EXPECT_GT(dres.value().indexing_efficiency,
            tres.value().indexing_efficiency);
  EXPECT_GT(dres.value().indexing_efficiency,
            kres.value().indexing_efficiency);
}

}  // namespace
}  // namespace dtree
