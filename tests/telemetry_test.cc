// FleetTelemetry (broadcast/telemetry.h): the observability layer's two
// hard requirements pinned as tests.
//
//   1. Telemetry OFF is free of observable effect: FleetResult is
//      bit-identical with and without a telemetry sink attached (the
//      golden pin — attaching observers must not perturb the engine's
//      RNG draw order or arithmetic).
//   2. Telemetry ON is deterministic: the timeline JSONL, the flight
//      recorder dump and the Prometheus text are byte-identical at 1, 4
//      and 8 threads (per-shard accumulation + shard-ordered merge).
//
// Plus: sum-of-windows equals the engine's own run totals, the read
// heatmap balances against the window counters, unrecoverable queries
// leave black-box flight records, TelemetryTraceSink gives the
// single-query experiment driver the same timeline schema, and
// CycleProfiler attributes fleet index reads to D-tree levels.

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/experiment.h"
#include "broadcast/fleet.h"
#include "broadcast/telemetry.h"
#include "broadcast/trace.h"
#include "dtree/dtree.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

struct FleetFixture {
  sub::Subdivision sub;
  core::DTree tree;
};

FleetFixture MakeFixture(int regions, uint64_t seed) {
  sub::Subdivision sub = test::RandomVoronoi(regions, seed);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return {std::move(sub), std::move(tree).value()};
}

FleetOptions LossyFleetOptions() {
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 2000;
  fopt.sim_cycles = 3.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.1;
  fopt.seed = 1234;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.15;
  fopt.loss.seed = 7;
  return fopt;
}

void ExpectBitIdentical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.mean_latency, b.mean_latency);  // bitwise
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_retries, b.mean_retries);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_lost_packets, b.total_lost_packets);
  EXPECT_EQ(a.total_corrupted_packets, b.total_corrupted_packets);
  EXPECT_EQ(a.unrecoverable_queries, b.unrecoverable_queries);
  EXPECT_EQ(a.fallback_queries, b.fallback_queries);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  const Histogram* ha = a.metrics.FindHistogram(kLatencyHist);
  const Histogram* hb = b.metrics.FindHistogram(kLatencyHist);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->Sum(), hb->Sum());
  EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
}

TEST(FleetTelemetryTest, AttachingTelemetryDoesNotPerturbFleetResult) {
  // The golden pin: an attached observer must be invisible to the
  // simulation itself — no RNG draws, no arithmetic reordering.
  FleetFixture f = MakeFixture(60, 901);
  FleetOptions fopt = LossyFleetOptions();
  auto bare = RunFleet(f.tree, f.sub, fopt);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  ASSERT_GT(bare.value().queries, 1000);

  FleetTelemetry telemetry;
  fopt.telemetry = &telemetry;
  auto observed = RunFleet(f.tree, f.sub, fopt);
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  ExpectBitIdentical(bare.value(), observed.value());
  EXPECT_FALSE(telemetry.series().empty());
}

TEST(FleetTelemetryTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  FleetFixture f = MakeFixture(60, 902);
  std::string timeline[3], flight[3], prom[3];
  int i = 0;
  for (int threads : {1, 4, 8}) {
    FleetOptions fopt = LossyFleetOptions();
    fopt.num_threads = threads;
    FleetTelemetry telemetry;
    fopt.telemetry = &telemetry;
    auto r = RunFleet(f.tree, f.sub, fopt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const TelemetryTotals totals = TotalsFromFleet(r.value());
    timeline[i] = telemetry.TimelineJsonl("threads-test", &totals);
    flight[i] = telemetry.flight_records();
    prom[i] = telemetry.PrometheusText();
    ++i;
  }
  EXPECT_FALSE(timeline[0].empty());
  EXPECT_EQ(timeline[0], timeline[1]);
  EXPECT_EQ(timeline[0], timeline[2]);
  EXPECT_EQ(flight[0], flight[1]);
  EXPECT_EQ(flight[0], flight[2]);
  EXPECT_EQ(prom[0], prom[1]);
  EXPECT_EQ(prom[0], prom[2]);
}

TEST(FleetTelemetryTest, WindowSumsMatchEngineTotals) {
  // The invariant tools/telemetry_report.py --check enforces offline,
  // asserted here directly against the engine's FleetResult.
  FleetFixture f = MakeFixture(60, 903);
  FleetOptions fopt = LossyFleetOptions();
  FleetTelemetry telemetry;
  fopt.telemetry = &telemetry;
  auto r = RunFleet(f.tree, f.sub, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const FleetResult& fr = r.value();

  const TelemetryTotals t = telemetry.Totals();
  EXPECT_EQ(t.queries, fr.queries);
  EXPECT_EQ(t.sessions, fr.sessions);
  EXPECT_EQ(t.departures, fr.departures);
  EXPECT_EQ(t.retries, fr.total_retries);
  EXPECT_EQ(t.lost_packets, fr.total_lost_packets);
  EXPECT_EQ(t.corrupted_packets, fr.total_corrupted_packets);
  EXPECT_EQ(t.unrecoverable, fr.unrecoverable_queries);
  EXPECT_EQ(t.fallback, fr.fallback_queries);

  const TimeSeries& ts = telemetry.series();
  EXPECT_EQ(static_cast<int64_t>(ts.CounterTotal(kTsQueriesCompleted)),
            fr.queries);
  // Latency / tuning histograms hold one sample per completed query and
  // their summed packet counts match the engine's means times count.
  EXPECT_EQ(static_cast<int64_t>(ts.HistogramCountTotal(kTsLatency)),
            fr.queries);
  EXPECT_EQ(static_cast<int64_t>(ts.HistogramCountTotal(kTsTuning)),
            fr.queries);
  const Histogram* lat = fr.metrics.FindHistogram(kLatencyHist);
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(ts.HistogramSumTotal(kTsLatency), lat->Sum());

  // Heatmap balances against the windowed read counters: every binned
  // packet is counted exactly once on each axis.
  int64_t heat_index = 0, heat_data = 0;
  for (const auto& [w, row] : telemetry.heatmap()) {
    ASSERT_EQ(row.index_reads.size(),
              static_cast<size_t>(telemetry.options().heatmap_bins));
    ASSERT_EQ(row.data_reads.size(),
              static_cast<size_t>(telemetry.options().heatmap_bins));
    for (int64_t c : row.index_reads) heat_index += c;
    for (int64_t c : row.data_reads) heat_data += c;
  }
  EXPECT_EQ(heat_index,
            static_cast<int64_t>(ts.CounterTotal(kTsIndexReads)));
  EXPECT_EQ(heat_data, static_cast<int64_t>(ts.CounterTotal(kTsDataReads)));
  EXPECT_GT(heat_index, 0);
  EXPECT_GT(heat_data, 0);
}

TEST(FleetTelemetryTest, UnrecoverableQueriesLeaveFlightRecords) {
  FleetFixture f = MakeFixture(60, 904);
  FleetOptions fopt = LossyFleetOptions();
  fopt.loss.loss_rate = 0.45;  // brutal channel: retry budgets exhaust
  FleetTelemetry telemetry;
  fopt.telemetry = &telemetry;
  auto r = RunFleet(f.tree, f.sub, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r.value().unrecoverable_queries, 0);
  EXPECT_EQ(telemetry.flight_record_count(),
            r.value().unrecoverable_queries);
  const std::string& flight = telemetry.flight_records();
  EXPECT_NE(flight.find("\"flight\": \"unrecoverable\""), std::string::npos);
  EXPECT_NE(flight.find("\"give_up\""), std::string::npos);
  EXPECT_NE(flight.find("\"events\": ["), std::string::npos);
  // One JSONL line per record.
  int64_t lines = 0;
  for (char ch : flight) lines += ch == '\n';
  EXPECT_EQ(lines, telemetry.flight_record_count());
}

TEST(FleetTelemetryTest, MergeShardsIsIdempotent) {
  FleetFixture f = MakeFixture(40, 905);
  FleetOptions fopt = LossyFleetOptions();
  fopt.num_clients = 300;
  FleetTelemetry telemetry;
  fopt.telemetry = &telemetry;
  ASSERT_TRUE(RunFleet(f.tree, f.sub, fopt).ok());
  const std::string once = telemetry.TimelineJsonl();
  telemetry.MergeShards();  // RunFleet already merged; merging again
  telemetry.MergeShards();  // must rebuild, not double-count
  EXPECT_EQ(telemetry.TimelineJsonl(), once);
}

TEST(TelemetryTraceSinkTest, ExperimentTracesProduceConsistentTimeline) {
  // The single-query driver, fed through the trace adapter, must satisfy
  // the same sum-of-windows invariants (minus session lifecycle, which
  // experiment traces do not carry).
  auto ds = workload::MakeUniformDataset();
  ASSERT_TRUE(ds.ok());
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 500;
  opt.seed = 11;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.2;
  opt.loss.seed = 3;

  ChannelOptions copt;
  copt.packet_capacity = opt.packet_capacity;
  auto ch = BroadcastChannel::Create(tree.value().NumIndexPackets(),
                                     ds.value().subdivision.NumRegions(),
                                     copt);
  ASSERT_TRUE(ch.ok());

  FleetTelemetry telemetry;
  telemetry.Reset(ch.value().cycle_packets(), 1);
  TelemetryTraceSink sink(&telemetry);
  opt.trace_sink = &sink;
  auto r = RunExperiment(tree.value(), ds.value().subdivision, nullptr, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  telemetry.MergeShards();

  const TelemetryTotals t = telemetry.Totals();
  EXPECT_EQ(t.queries, static_cast<int64_t>(opt.num_queries));
  EXPECT_EQ(t.retries, r.value().total_retries);
  EXPECT_EQ(t.corrupted_packets, r.value().total_corrupted_packets);
  EXPECT_EQ(t.unrecoverable, r.value().unrecoverable_queries);
  EXPECT_EQ(t.fallback, r.value().fallback_queries);
  EXPECT_EQ(t.sessions, 0);  // no session lifecycle in experiment traces
  EXPECT_EQ(t.departures, 0);
  const std::string timeline = telemetry.TimelineJsonl("experiment");
  EXPECT_NE(timeline.find("\"meta\": \"fleet_telemetry\""),
            std::string::npos);
  EXPECT_NE(timeline.find("\"cell\": \"experiment\""), std::string::npos);
}

TEST(CycleProfilerFleetTest, AttributesFleetIndexReadsToTreeLevels) {
  // Satellite: the cycle profiler consumes the fleet's replayed trace
  // stream and attributes index-packet reads to D-tree levels, exactly
  // as it does for the single-query driver.
  FleetFixture f = MakeFixture(80, 906);
  FleetOptions fopt = LossyFleetOptions();
  fopt.num_clients = 500;

  ChannelOptions copt;
  copt.packet_capacity = fopt.packet_capacity;
  auto ch = BroadcastChannel::Create(f.tree.NumIndexPackets(),
                                     f.sub.NumRegions(), copt);
  ASSERT_TRUE(ch.ok());
  CycleProfiler profiler(ch.value().cycle_packets());
  fopt.trace_sink = &profiler;
  auto r = RunFleet(f.tree, f.sub, fopt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(profiler.queries()), r.value().queries);
  EXPECT_GT(profiler.latency_hist().TotalCount(), 0u);
  int64_t level_total = 0;
  for (int64_t c : profiler.level_reads()) level_total += c;
  EXPECT_GT(level_total, 0);  // D-tree probes annotate their path
  int64_t awake = 0;
  for (int64_t c : profiler.position_reads()) awake += c;
  EXPECT_GT(awake, 0);
}

}  // namespace
}  // namespace dtree::bcast
