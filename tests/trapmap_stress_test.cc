// Stress suite for the randomized-incremental trapezoidal map: many
// insertion orders, degenerate inputs, and oracle cross-checks. The trap
// map has the most delicate degeneracy handling in the repository (shared
// endpoints, equal x-coordinates, vertical and collinear segments), so it
// gets its own matrix.

#include "baselines/trapmap/trapmap.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::baselines {
namespace {

using geom::Point;

class TrapMapSeedMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(TrapMapSeedMatrixTest, InvariantsAndOracleAcrossInsertionOrders) {
  const auto [n, seed, clustered] = GetParam();
  const sub::Subdivision sub =
      clustered ? test::ClusteredVoronoi(n, 7000 + seed)
                : test::RandomVoronoi(n, 7000 + seed);
  const sub::PointLocator oracle(sub);
  TrapMap::Options o;
  o.packet_capacity = 64;
  o.seed = static_cast<uint64_t>(seed);  // shuffles the insertion order
  auto map_r = TrapMap::Build(sub, o);
  ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
  const TrapMap& map = map_r.value();
  ASSERT_OK(map.CheckInvariants(1500, static_cast<uint64_t>(seed) + 1));
  // Expected-linear size regardless of insertion order.
  EXPECT_LE(map.num_alive_trapezoids(), 3 * map.num_segments() + 8);
  EXPECT_LE(map.num_dag_nodes(), 20 * map.num_segments() + 8);
  Rng rng(static_cast<uint64_t>(seed) + 2);
  for (int q = 0; q < 300; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    ASSERT_EQ(map.Locate(p), oracle.Locate(p))
        << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TrapMapSeedMatrixTest,
    ::testing::Combine(::testing::Values(15, 60, 130),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()));

TEST(TrapMapStressTest, SingleRegionDegenerate) {
  std::vector<geom::Polygon> one{
      geom::Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}})};
  auto sub_r = sub::Subdivision::FromPolygons({0, 0, 10, 10}, one);
  ASSERT_TRUE(sub_r.ok());
  TrapMap::Options o;
  o.packet_capacity = 64;
  auto map_r = TrapMap::Build(sub_r.value(), o);
  ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
  EXPECT_EQ(map_r.value().Locate({5, 5}), 0);
  auto trace = map_r.value().Probe({5, 5});
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().region, 0);
}

TEST(TrapMapStressTest, TwoVerticalSlivers) {
  // Two tall, thin regions split by a perfectly vertical border — the
  // worst case for the x-comparison shear.
  std::vector<geom::Polygon> cells;
  cells.push_back(geom::Polygon({{0, 0}, {5, 0}, {5, 100}, {0, 100}}));
  cells.push_back(geom::Polygon({{5, 0}, {10, 0}, {10, 100}, {5, 100}}));
  auto sub_r = sub::Subdivision::FromPolygons({0, 0, 10, 100}, cells);
  ASSERT_TRUE(sub_r.ok());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TrapMap::Options o;
    o.packet_capacity = 64;
    o.seed = seed;
    auto map_r = TrapMap::Build(sub_r.value(), o);
    ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
    EXPECT_EQ(map_r.value().Locate({2.5, 50}), 0) << seed;
    EXPECT_EQ(map_r.value().Locate({7.5, 50}), 1) << seed;
    EXPECT_EQ(map_r.value().Locate({4.9, 99.5}), 0) << seed;
    EXPECT_EQ(map_r.value().Locate({5.1, 0.5}), 1) << seed;
  }
}

TEST(TrapMapStressTest, ManyCollinearBorderSegments) {
  // 1xK strip: the top and bottom borders are long chains of collinear
  // segments, all vertical interior walls share endpoints with them.
  std::vector<geom::Polygon> cells;
  const int k = 12;
  for (int i = 0; i < k; ++i) {
    const double x = i * 10.0;
    cells.push_back(
        geom::Polygon({{x, 0}, {x + 10, 0}, {x + 10, 10}, {x, 10}}));
  }
  auto sub_r = sub::Subdivision::FromPolygons({0, 0, 10.0 * k, 10}, cells);
  ASSERT_TRUE(sub_r.ok());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TrapMap::Options o;
    o.packet_capacity = 64;
    o.seed = seed;
    auto map_r = TrapMap::Build(sub_r.value(), o);
    ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
    ASSERT_OK(map_r.value().CheckInvariants(1000, seed));
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(map_r.value().Locate({i * 10.0 + 5.0, 5.0}), i) << seed;
    }
  }
}

TEST(TrapMapStressTest, ProbeCostIsLogarithmicish) {
  // Tuning should grow slowly with N: compare mean DAG path packets at
  // N=20 vs N=160 — far less than the 8x size ratio.
  double mean_small = 0.0, mean_big = 0.0;
  for (int round = 0; round < 2; ++round) {
    const int n = round == 0 ? 20 : 160;
    const sub::Subdivision sub = test::RandomVoronoi(n, 8800 + n);
    TrapMap::Options o;
    o.packet_capacity = 64;
    auto map_r = TrapMap::Build(sub, o);
    ASSERT_TRUE(map_r.ok());
    Rng rng(9);
    double total = 0.0;
    for (int q = 0; q < 400; ++q) {
      const Point p = test::UnambiguousQueryPoint(sub, &rng);
      auto t = map_r.value().Probe(p);
      ASSERT_TRUE(t.ok());
      total += static_cast<double>(t.value().packets.size());
    }
    (round == 0 ? mean_small : mean_big) = total / 400.0;
  }
  EXPECT_LT(mean_big, mean_small * 3.0);
}

}  // namespace
}  // namespace dtree::baselines
