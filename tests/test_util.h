// Shared helpers for the test suite.

#ifndef DTREE_TESTS_TEST_UTIL_H_
#define DTREE_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "subdivision/subdivision.h"
#include "subdivision/voronoi.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::test {

/// Fails the current test when the status is not OK.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const ::dtree::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const ::dtree::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

/// Builds a Voronoi subdivision over n uniform points; aborts the test on
/// failure.
inline sub::Subdivision RandomVoronoi(int n, uint64_t seed) {
  Rng rng(seed);
  const geom::BBox area = workload::DefaultServiceArea();
  auto pts = workload::UniformPoints(n, area, &rng);
  auto sub_r = sub::BuildVoronoiSubdivision(pts, area);
  EXPECT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  return std::move(sub_r).value();
}

/// Builds a clustered Voronoi subdivision (stresses elongated cells).
inline sub::Subdivision ClusteredVoronoi(int n, uint64_t seed) {
  Rng rng(seed);
  const geom::BBox area = workload::DefaultServiceArea();
  auto pts = workload::ClusteredPoints(n, area, std::max(2, n / 20), 0.04,
                                       &rng);
  auto sub_r = sub::BuildVoronoiSubdivision(pts, area);
  EXPECT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  return std::move(sub_r).value();
}

/// A query point far enough from every region border that all index
/// structures must agree on its answer. Draws until one is found.
inline geom::Point UnambiguousQueryPoint(const sub::Subdivision& sub,
                                         Rng* rng,
                                         double min_border_dist = 1e-4) {
  const geom::BBox& a = sub.service_area();
  for (;;) {
    geom::Point p{rng->Uniform(a.min_x, a.max_x),
                  rng->Uniform(a.min_y, a.max_y)};
    if (sub.DistanceToNearestBorder(p) > min_border_dist) return p;
  }
}

}  // namespace dtree::test

#endif  // DTREE_TESTS_TEST_UTIL_H_
