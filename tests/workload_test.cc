// Tests for the dataset generators.

#include <set>

#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::workload {
namespace {

TEST(UniformPointsTest, CountBoundsAndDeterminism) {
  const geom::BBox area = DefaultServiceArea();
  Rng a(1), b(1), c(2);
  const auto p1 = UniformPoints(200, area, &a);
  const auto p2 = UniformPoints(200, area, &b);
  const auto p3 = UniformPoints(200, area, &c);
  EXPECT_EQ(p1.size(), 200u);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(area.Contains(p1[i]));
    EXPECT_EQ(p1[i], p2[i]);  // same seed, same stream
  }
  EXPECT_NE(p1, p3);
}

TEST(UniformPointsTest, MinimumSeparationHolds) {
  const geom::BBox area = DefaultServiceArea();
  Rng rng(3);
  const auto pts = UniformPoints(400, area, &rng);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(geom::Distance(pts[i], pts[j]), 1e-3);
    }
  }
}

TEST(ClusteredPointsTest, StaysInsideAndClusters) {
  const geom::BBox area = DefaultServiceArea();
  Rng rng(4);
  const auto pts = ClusteredPoints(300, area, 8, 0.03, &rng);
  EXPECT_EQ(pts.size(), 300u);
  geom::Point mean{0, 0};
  for (const auto& p : pts) {
    EXPECT_TRUE(area.Contains(p));
    mean = mean + p;
  }
  mean = mean * (1.0 / 300.0);
  // Clustering: the mean nearest-neighbor distance must be far below the
  // uniform expectation (~0.5/sqrt(n/area) ~ 29 for n=300 on 1000^2).
  double nn_sum = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    double best = 1e18;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, geom::Distance(pts[i], pts[j]));
    }
    nn_sum += best;
  }
  EXPECT_LT(nn_sum / 300.0, 15.0);
}

TEST(DatasetTest, PaperCardinalitiesAndValidity) {
  auto uniform = MakeUniformDataset();
  ASSERT_TRUE(uniform.ok()) << uniform.status().ToString();
  EXPECT_EQ(uniform.value().subdivision.NumRegions(), 1000);
  EXPECT_TRUE(uniform.value().subdivision.Validate().ok());

  auto hospital = MakeHospitalDataset();
  ASSERT_TRUE(hospital.ok()) << hospital.status().ToString();
  EXPECT_EQ(hospital.value().subdivision.NumRegions(), 185);
  EXPECT_TRUE(hospital.value().subdivision.Validate().ok());

  auto park = MakeParkDataset();
  ASSERT_TRUE(park.ok()) << park.status().ToString();
  EXPECT_EQ(park.value().subdivision.NumRegions(), 1102);
  EXPECT_TRUE(park.value().subdivision.Validate().ok());
}

TEST(DatasetTest, NamesMatchThePaper) {
  auto all = MakePaperDatasets();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 3u);
  EXPECT_EQ(all.value()[0].name, "UNIFORM");
  EXPECT_EQ(all.value()[1].name, "HOSPITAL");
  EXPECT_EQ(all.value()[2].name, "PARK");
  for (const auto& ds : all.value()) {
    EXPECT_EQ(ds.sites.size(),
              static_cast<size_t>(ds.subdivision.NumRegions()));
  }
}

}  // namespace
}  // namespace dtree::workload
