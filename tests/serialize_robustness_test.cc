// Failure-injection tests for the D-tree wire format: a client decoding
// corrupted or truncated packet streams must fail with a Status (or, for
// payload-only corruption, misroute gracefully) — never crash or loop.

#include "common/rng.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::core {
namespace {

using geom::Point;

struct Fixture {
  sub::Subdivision sub;
  DTree tree;
  std::vector<std::vector<uint8_t>> packets;
  int capacity;
};

Fixture MakeFixture(int capacity) {
  sub::Subdivision s = test::RandomVoronoi(40, 71);
  DTree::Options o;
  o.packet_capacity = capacity;
  DTree t = DTree::Build(s, o).value();
  auto pkts = SerializeDTree(t).value();
  return Fixture{std::move(s), std::move(t), std::move(pkts), capacity};
}

TEST(SerializeRobustnessTest, EmptyStreamIsRejected) {
  std::vector<std::vector<uint8_t>> packets;
  EXPECT_FALSE(
      QueryFromPackets(packets, 64, true, Point{1, 1}, nullptr).ok());
}

TEST(SerializeRobustnessTest, TruncatedStreamFailsCleanly) {
  Fixture f = MakeFixture(64);
  // Drop the tail packets: pointers into them must produce OutOfRange /
  // Internal, never a crash.
  ASSERT_GT(f.packets.size(), 2u);
  std::vector<std::vector<uint8_t>> truncated(f.packets.begin(),
                                              f.packets.begin() + 1);
  Rng rng(1);
  int failures = 0;
  for (int q = 0; q < 200; ++q) {
    const Point p = test::UnambiguousQueryPoint(f.sub, &rng);
    auto r = QueryFromPackets(truncated, f.capacity, true, p, nullptr);
    if (!r.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);  // most descents need packets that are gone
}

TEST(SerializeRobustnessTest, BitFlipsNeverCrash) {
  Fixture f = MakeFixture(128);
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = f.packets;
    // Flip 1-4 random bytes anywhere in the stream.
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < flips; ++i) {
      auto& pkt = corrupted[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corrupted.size()) - 1))];
      pkt[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pkt.size()) - 1))] ^=
          static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    const Point p = test::UnambiguousQueryPoint(f.sub, &rng);
    // Any Status or any region id is acceptable; crashing or hanging is
    // not. (The decoder's hop guard bounds pointer loops.)
    auto r = QueryFromPackets(corrupted, f.capacity, true, p, nullptr);
    if (r.ok()) {
      // Region may be wrong under corruption, but must be a plain value.
      (void)r.value();
    }
  }
  SUCCEED();
}

TEST(SerializeRobustnessTest, ZeroPaddingTailIsInert) {
  // Padding bytes after the last node decode as bid 0 / header 0 only if
  // a pointer leads there — and no valid pointer does. Round-trip across
  // every capacity to make sure padding never interferes.
  for (int capacity : {64, 256, 2048}) {
    Fixture f = MakeFixture(capacity);
    Rng rng(3);
    for (int q = 0; q < 200; ++q) {
      const Point p = test::UnambiguousQueryPoint(f.sub, &rng, 1e-3);
      auto r = QueryFromPackets(f.packets, f.capacity,
                                f.tree.options().early_termination, p,
                                nullptr);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value(), f.tree.Locate(p));
    }
  }
}

TEST(SerializeRobustnessTest, DecodeWithoutEarlyTermination) {
  // The ablation configuration round-trips too (no RMC/LMC block except
  // where bounds are unrecoverable from the partition).
  const sub::Subdivision sub = test::ClusteredVoronoi(60, 72);
  DTree::Options o;
  o.packet_capacity = 64;
  o.early_termination = false;
  auto tree_r = DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  auto packets_r = SerializeDTree(tree_r.value());
  ASSERT_TRUE(packets_r.ok()) << packets_r.status().ToString();
  Rng rng(4);
  for (int q = 0; q < 300; ++q) {
    const geom::Point p = test::UnambiguousQueryPoint(sub, &rng, 1e-3);
    std::vector<int> read;
    auto r = QueryFromPackets(packets_r.value(), 64, false, p, &read);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), tree_r.value().Locate(p));
    auto trace = tree_r.value().Probe(p);
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(read, trace.value().packets);
  }
}

TEST(SerializeRobustnessTest, FramedRoundTrip) {
  Fixture f = MakeFixture(128);
  const auto frames = FramePackets(f.packets);
  ASSERT_EQ(frames.size(), f.packets.size());
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.size(),
              static_cast<size_t>(f.capacity) + bcast::kFrameOverheadBytes);
    EXPECT_OK(VerifyFrame(frame));
  }
  auto unframed = UnframePackets(frames);
  ASSERT_TRUE(unframed.ok());
  EXPECT_EQ(unframed.value(), f.packets);

  Rng rng(5);
  for (int q = 0; q < 200; ++q) {
    const Point p = test::UnambiguousQueryPoint(f.sub, &rng, 1e-3);
    std::vector<int> read_framed, read_raw;
    auto fr = QueryFromFramedPackets(frames, f.capacity,
                                     f.tree.options().early_termination, p,
                                     &read_framed);
    auto rr = QueryFromPackets(f.packets, f.capacity,
                               f.tree.options().early_termination, p,
                               &read_raw);
    ASSERT_TRUE(fr.ok()) << fr.status().ToString();
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ(fr.value(), rr.value());
    EXPECT_EQ(fr.value(), f.tree.Locate(p));
    EXPECT_EQ(read_framed, read_raw);
  }
}

TEST(SerializeRobustnessTest, CorruptedFramesAlwaysReturnNonOk) {
  // With every frame corrupted, the CRC catches the very first packet the
  // decoder touches: no query may return OK, whatever byte was hit.
  Fixture f = MakeFixture(128);
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    auto frames = FramePackets(f.packets);
    for (auto& frame : frames) {
      frame[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(frame.size()) - 1))] ^=
          static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    const Point p = test::UnambiguousQueryPoint(f.sub, &rng);
    auto r = QueryFromFramedPackets(frames, f.capacity, true, p, nullptr);
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(UnframePackets(frames).ok());
  }
}

TEST(SerializeRobustnessTest, SingleCorruptFrameDetectedWhenRead) {
  // Corrupt one random frame: a query either avoids that packet entirely
  // and answers correctly, or touches it and must fail — silent misroutes
  // through a corrupted packet are exactly what the CRC exists to prevent.
  Fixture f = MakeFixture(64);
  const auto clean = FramePackets(f.packets);
  Rng rng(7);
  int detected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto frames = clean;
    const int victim = static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(frames.size()) - 1));
    frames[static_cast<size_t>(victim)][static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(frames[victim].size()) - 1))] ^=
        static_cast<uint8_t>(rng.UniformInt(1, 255));
    const Point p = test::UnambiguousQueryPoint(f.sub, &rng, 1e-3);
    std::vector<int> read;
    auto r = QueryFromFramedPackets(frames, f.capacity,
                                    f.tree.options().early_termination, p,
                                    &read);
    if (r.ok()) {
      EXPECT_EQ(r.value(), f.tree.Locate(p));
      for (int pkt : read) EXPECT_NE(pkt, victim);
    } else {
      ++detected;
    }
  }
  EXPECT_GT(detected, 0);  // packet 0 is read by every query
}

TEST(SerializeRobustnessTest, MalformedFramesRejected) {
  EXPECT_FALSE(VerifyFrame({}).ok());
  EXPECT_FALSE(VerifyFrame({1, 2, 3}).ok());  // shorter than the trailer
  Fixture f = MakeFixture(64);
  auto frames = FramePackets(f.packets);
  // Truncated frame: wrong length surfaces as DataLoss, not a bad read.
  frames[0].pop_back();
  EXPECT_FALSE(
      QueryFromFramedPackets(frames, f.capacity, true, Point{1, 1}, nullptr)
          .ok());
  EXPECT_FALSE(UnframePackets(frames).ok());
  // Raw (unframed) packets handed to the framed decoder fail the same way.
  EXPECT_FALSE(QueryFromFramedPackets(f.packets, f.capacity, true,
                                      Point{1, 1}, nullptr)
                   .ok());
}

}  // namespace
}  // namespace dtree::core
