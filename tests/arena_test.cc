// Differential tests for the flat-arena probe engines (DESIGN.md §12).
//
// The per-probe byte decoders (dtree QueryFromPackets, baselines
// QueryFromPackets) are the bit-identical oracle: for every query the
// arena must return the same region and — where the arena replicates the
// wire read-log (D-tree, trap-tree, trian-tree) — the same packet list.
// The R*-tree arena pins the region only (its packet log mirrors the
// memory Probe, not the decoder's placement-walk peeks; see
// baselines/rstar/arena.h).
//
// Corruption tests pin the safety contract: a framed arena build touches
// every packet through the CRC-verifying reader, so a flipped bit fails
// the build with kDataLoss — the degradation ladder's trigger — and the
// arena is never constructed over unverified bytes.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "baselines/kirkpatrick/arena.h"
#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/arena.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/arena.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/arena.h"
#include "broadcast/experiment.h"
#include "broadcast/frame.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "dtree/arena.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

using geom::Point;

// Uniform points over the service area: the differential contract is
// bit-identity, so ambiguous near-border points are fair game — both
// sides must take exactly the same branch on them.
std::vector<Point> AreaQueries(const sub::Subdivision& sub, int n,
                               uint64_t seed) {
  Rng rng(seed);
  const geom::BBox& a = sub.service_area();
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(
        {rng.Uniform(a.min_x, a.max_x), rng.Uniform(a.min_y, a.max_y)});
  }
  return out;
}

// Compares the arena probe against an oracle outcome for one query.
// Either both succeed with the same region (and packet list when
// `compare_packets`) or both fail with the same status code.
void ExpectSameOutcome(const Result<int>& oracle,
                       const std::vector<int>& oracle_packets,
                       const Status& arena_st,
                       const bcast::ProbeTrace& trace, bool compare_packets,
                       const Point& p) {
  if (!oracle.ok()) {
    ASSERT_FALSE(arena_st.ok())
        << "arena succeeded where the decoder failed at (" << p.x << ", "
        << p.y << "): " << oracle.status().ToString();
    EXPECT_EQ(static_cast<int>(oracle.status().code()),
              static_cast<int>(arena_st.code()))
        << oracle.status().ToString() << " vs " << arena_st.ToString();
    return;
  }
  ASSERT_TRUE(arena_st.ok())
      << "arena failed where the decoder succeeded at (" << p.x << ", "
      << p.y << "): " << arena_st.ToString();
  EXPECT_EQ(oracle.value(), trace.region)
      << "region mismatch at (" << p.x << ", " << p.y << ")";
  if (compare_packets) {
    EXPECT_EQ(oracle_packets, trace.packets)
        << "packet-log mismatch at (" << p.x << ", " << p.y << ")";
  }
}

// --- D-tree ---------------------------------------------------------------

void RunDTreeDifferential(const sub::Subdivision& sub, int capacity,
                          bool early_termination, int num_queries,
                          uint64_t seed) {
  core::DTree::Options o;
  o.packet_capacity = capacity;
  o.early_termination = early_termination;
  auto tree_r = core::DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  auto packets_r = core::SerializeDTreeFlat(tree_r.value());
  ASSERT_TRUE(packets_r.ok()) << packets_r.status().ToString();
  auto arena_r = core::DTreeArena::Build(packets_r.value(), capacity,
                                         /*framed=*/false, early_termination,
                                         sub.NumRegions());
  ASSERT_TRUE(arena_r.ok()) << arena_r.status().ToString();
  const core::DTreeArena& arena = arena_r.value();

  std::vector<int> read;
  bcast::ProbeTrace trace;
  for (const Point& p : AreaQueries(sub, num_queries, seed)) {
    read.clear();
    const Result<int> oracle = core::QueryFromPackets(
        packets_r.value(), capacity, early_termination, p, &read);
    const Status st = arena.ProbeInto(p, &trace);
    ExpectSameOutcome(oracle, read, st, trace, /*compare_packets=*/true, p);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DTreeArenaTest, MatchesDecoderOnPaperDatasets) {
  auto sets_r = workload::MakePaperDatasets();
  ASSERT_TRUE(sets_r.ok()) << sets_r.status().ToString();
  for (const workload::Dataset& d : sets_r.value()) {
    SCOPED_TRACE(d.name);
    RunDTreeDifferential(d.subdivision, 128, /*early_termination=*/true,
                         2000, 101);
  }
}

TEST(DTreeArenaTest, MatchesDecoderWithoutEarlyTermination) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  RunDTreeDifferential(d_r.value().subdivision, 64,
                       /*early_termination=*/false, 2000, 102);
}

TEST(DTreeArenaTest, MatchesDecoderOnScaleDatasets) {
  for (auto dist : {workload::ScaleDistribution::kUniform,
                    workload::ScaleDistribution::kClustered}) {
    auto d_r = workload::MakeScaleDataset(5000, dist);
    ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
    SCOPED_TRACE(d_r.value().name);
    RunDTreeDifferential(d_r.value().subdivision, 256,
                         /*early_termination=*/true, 1000, 103);
  }
}

TEST(DTreeArenaTest, MatchesDecoderAtScale100k) {
  auto d_r =
      workload::MakeScaleDataset(100000, workload::ScaleDistribution::kUniform);
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  RunDTreeDifferential(d_r.value().subdivision, 256,
                       /*early_termination=*/true, 512, 104);
}

// --- Baselines ------------------------------------------------------------

void RunBaselineDifferentials(const sub::Subdivision& sub, int capacity,
                              int num_queries, uint64_t seed) {
  const int n = sub.NumRegions();
  const std::vector<Point> queries = AreaQueries(sub, num_queries, seed);
  std::vector<int> read;
  bcast::ProbeTrace trace;

  {
    SCOPED_TRACE("trapmap");
    baselines::TrapMap::Options o;
    o.packet_capacity = capacity;
    auto map_r = baselines::TrapMap::Build(sub, o);
    ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
    auto pk_r = map_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok()) << pk_r.status().ToString();
    auto ar_r = baselines::TrapMapArena::Build(pk_r.value(), capacity,
                                               /*framed=*/false, n);
    ASSERT_TRUE(ar_r.ok()) << ar_r.status().ToString();
    for (const Point& p : queries) {
      read.clear();
      const Result<int> oracle = baselines::TrapMap::QueryFromPackets(
          pk_r.value(), capacity, /*framed=*/false, n, p, &read);
      const Status st = ar_r.value().ProbeInto(p, &trace);
      ExpectSameOutcome(oracle, read, st, trace, /*compare_packets=*/true, p);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  {
    SCOPED_TRACE("kirkpatrick");
    baselines::TrianTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = baselines::TrianTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    auto pk_r = tree_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok()) << pk_r.status().ToString();
    const auto roots = tree_r.value().RootLocations();
    auto ar_r = baselines::TrianTreeArena::Build(pk_r.value(), capacity,
                                                 /*framed=*/false, roots, n);
    ASSERT_TRUE(ar_r.ok()) << ar_r.status().ToString();
    for (const Point& p : queries) {
      read.clear();
      const Result<int> oracle = baselines::TrianTree::QueryFromPackets(
          pk_r.value(), capacity, /*framed=*/false, roots, n, p, &read);
      const Status st = ar_r.value().ProbeInto(p, &trace);
      ExpectSameOutcome(oracle, read, st, trace, /*compare_packets=*/true, p);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  {
    SCOPED_TRACE("rstar");
    baselines::RStarTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = baselines::RStarTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    auto pk_r = tree_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok()) << pk_r.status().ToString();
    auto ar_r = baselines::RStarArena::Build(pk_r.value(), capacity,
                                             /*framed=*/false, n);
    ASSERT_TRUE(ar_r.ok()) << ar_r.status().ToString();
    for (const Point& p : queries) {
      read.clear();
      const Result<int> oracle = baselines::RStarTree::QueryFromPackets(
          pk_r.value(), capacity, /*framed=*/false, n, p, &read);
      const Status st = ar_r.value().ProbeInto(p, &trace);
      // Region only: the R* arena's packet log mirrors the memory Probe.
      ExpectSameOutcome(oracle, read, st, trace, /*compare_packets=*/false,
                        p);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(BaselineArenaTest, MatchDecoderOnPaperDataset) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  RunBaselineDifferentials(d_r.value().subdivision, 128, 1500, 201);
}

TEST(BaselineArenaTest, MatchDecoderOnClustered) {
  const sub::Subdivision sub = test::ClusteredVoronoi(400, 17);
  RunBaselineDifferentials(sub, 256, 1000, 202);
}

TEST(BaselineArenaTest, MatchDecoderOnScaleDatasets) {
  for (auto dist : {workload::ScaleDistribution::kUniform,
                    workload::ScaleDistribution::kClustered}) {
    auto d_r = workload::MakeScaleDataset(5000, dist);
    ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
    SCOPED_TRACE(d_r.value().name);
    RunBaselineDifferentials(d_r.value().subdivision, 256, 500, 203);
  }
}

// --- Thread safety --------------------------------------------------------

// The arenas are immutable after Build and ProbeInto keeps per-call state
// on the stack (or in thread_local scratch), so concurrent probes from
// 1/4/8 threads must reproduce the single-threaded outcomes exactly.
TEST(ArenaThreadTest, ConcurrentProbesMatchDecoder) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  const sub::Subdivision& sub = d_r.value().subdivision;
  const int capacity = 128;
  const int n = sub.NumRegions();

  core::DTree::Options dopt;
  dopt.packet_capacity = capacity;
  auto tree_r = core::DTree::Build(sub, dopt);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  auto packets_r = core::SerializeDTreeFlat(tree_r.value());
  ASSERT_TRUE(packets_r.ok()) << packets_r.status().ToString();
  auto dtree_arena_r =
      core::DTreeArena::Build(packets_r.value(), capacity, /*framed=*/false,
                              dopt.early_termination, n);
  ASSERT_TRUE(dtree_arena_r.ok()) << dtree_arena_r.status().ToString();

  baselines::RStarTree::Options ropt;
  ropt.packet_capacity = capacity;
  auto rtree_r = baselines::RStarTree::Build(sub, ropt);
  ASSERT_TRUE(rtree_r.ok()) << rtree_r.status().ToString();
  auto rpk_r = rtree_r.value().SerializePackets();
  ASSERT_TRUE(rpk_r.ok()) << rpk_r.status().ToString();
  auto rstar_arena_r = baselines::RStarArena::Build(rpk_r.value(), capacity,
                                                    /*framed=*/false, n);
  ASSERT_TRUE(rstar_arena_r.ok()) << rstar_arena_r.status().ToString();

  // Single-threaded expectations from the byte decoders.
  const std::vector<Point> queries = AreaQueries(sub, 2048, 301);
  struct Expected {
    int dtree_region;
    std::vector<int> dtree_packets;
    int rstar_region;
  };
  std::vector<Expected> expected;
  expected.reserve(queries.size());
  for (const Point& p : queries) {
    Expected e;
    std::vector<int> read;
    auto d = core::QueryFromPackets(packets_r.value(), capacity,
                                    dopt.early_termination, p, &read);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    e.dtree_region = d.value();
    e.dtree_packets = read;
    read.clear();
    auto r = baselines::RStarTree::QueryFromPackets(
        rpk_r.value(), capacity, /*framed=*/false, n, p, &read);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    e.rstar_region = r.value();
    expected.push_back(std::move(e));
  }

  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    std::atomic<int> mismatches{0};
    constexpr int kShards = 16;
    pool.ParallelFor(kShards, [&](int shard) {
      bcast::ProbeTrace trace;
      for (size_t i = static_cast<size_t>(shard); i < queries.size();
           i += kShards) {
        const Point& p = queries[i];
        if (!dtree_arena_r.value().ProbeInto(p, &trace).ok() ||
            trace.region != expected[i].dtree_region ||
            trace.packets != expected[i].dtree_packets) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (!rstar_arena_r.value().ProbeInto(p, &trace).ok() ||
            trace.region != expected[i].rstar_region) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    EXPECT_EQ(mismatches.load(), 0);
  }
}

// --- CRC verification during build ---------------------------------------

// A framed build reads every packet through the CRC-verifying reader: a
// single flipped bit anywhere the build touches fails with kDataLoss (the
// degradation ladder's re-tune trigger), so an arena can never be
// constructed over corrupted frames.
TEST(ArenaCorruptionTest, FramedBuildRejectsFlippedBit) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  const sub::Subdivision& sub = d_r.value().subdivision;
  const int capacity = 128;
  const int n = sub.NumRegions();

  // D-tree.
  {
    SCOPED_TRACE("dtree");
    core::DTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = core::DTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok());
    auto pk_r = core::SerializeDTree(tree_r.value());
    ASSERT_TRUE(pk_r.ok());
    auto frames = bcast::FramePackets(pk_r.value());
    ASSERT_TRUE(core::DTreeArenaFromFrames(frames, capacity,
                                           o.early_termination, n)
                    .ok());
    bcast::FlipBit(&frames[0], 37);
    auto bad = core::DTreeArenaFromFrames(frames, capacity,
                                          o.early_termination, n);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(static_cast<int>(bad.status().code()),
              static_cast<int>(StatusCode::kDataLoss))
        << bad.status().ToString();
  }
  // Trap-tree.
  {
    SCOPED_TRACE("trapmap");
    baselines::TrapMap::Options o;
    o.packet_capacity = capacity;
    auto map_r = baselines::TrapMap::Build(sub, o);
    ASSERT_TRUE(map_r.ok());
    auto pk_r = map_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok());
    auto frames = bcast::FramePackets(pk_r.value());
    ASSERT_TRUE(baselines::TrapMapArena::Build(frames, capacity,
                                               /*framed=*/true, n)
                    .ok());
    bcast::FlipBit(&frames[0], 11);
    auto bad = baselines::TrapMapArena::Build(frames, capacity,
                                              /*framed=*/true, n);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(static_cast<int>(bad.status().code()),
              static_cast<int>(StatusCode::kDataLoss))
        << bad.status().ToString();
  }
  // Trian-tree.
  {
    SCOPED_TRACE("kirkpatrick");
    baselines::TrianTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = baselines::TrianTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok());
    auto pk_r = tree_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok());
    const auto roots = tree_r.value().RootLocations();
    auto frames = bcast::FramePackets(pk_r.value());
    ASSERT_TRUE(baselines::TrianTreeArena::Build(frames, capacity,
                                                 /*framed=*/true, roots, n)
                    .ok());
    bcast::FlipBit(&frames[0], 53);
    auto bad = baselines::TrianTreeArena::Build(frames, capacity,
                                                /*framed=*/true, roots, n);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(static_cast<int>(bad.status().code()),
              static_cast<int>(StatusCode::kDataLoss))
        << bad.status().ToString();
  }
  // R*-tree.
  {
    SCOPED_TRACE("rstar");
    baselines::RStarTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = baselines::RStarTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok());
    auto pk_r = tree_r.value().SerializePackets();
    ASSERT_TRUE(pk_r.ok());
    auto frames = bcast::FramePackets(pk_r.value());
    ASSERT_TRUE(baselines::RStarArena::Build(frames, capacity,
                                             /*framed=*/true, n)
                    .ok());
    bcast::FlipBit(&frames[0], 29);
    auto bad = baselines::RStarArena::Build(frames, capacity,
                                            /*framed=*/true, n);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(static_cast<int>(bad.status().code()),
              static_cast<int>(StatusCode::kDataLoss))
        << bad.status().ToString();
  }
}

// A framed (CRC-verified) build must decode to the same arena as the
// unframed build: probing both over the same queries gives identical
// outcomes.
TEST(ArenaCorruptionTest, FramedBuildMatchesUnframed) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  const sub::Subdivision& sub = d_r.value().subdivision;
  const int capacity = 128;
  core::DTree::Options o;
  o.packet_capacity = capacity;
  auto tree_r = core::DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  auto pk_r = core::SerializeDTree(tree_r.value());
  ASSERT_TRUE(pk_r.ok());
  const auto frames = bcast::FramePackets(pk_r.value());
  auto plain_r = core::DTreeArena::Build(pk_r.value(), capacity,
                                         /*framed=*/false,
                                         o.early_termination,
                                         sub.NumRegions());
  ASSERT_TRUE(plain_r.ok());
  auto framed_r = core::DTreeArenaFromFrames(frames, capacity,
                                             o.early_termination,
                                             sub.NumRegions());
  ASSERT_TRUE(framed_r.ok());
  bcast::ProbeTrace a, b;
  for (const Point& p : AreaQueries(sub, 500, 401)) {
    ASSERT_OK(plain_r.value().ProbeInto(p, &a));
    ASSERT_OK(framed_r.value().ProbeInto(p, &b));
    EXPECT_EQ(a.region, b.region);
    EXPECT_EQ(a.packets, b.packets);
  }
}

// --- Simulate byte-identity -----------------------------------------------

void ExpectResultsIdentical(const bcast::ExperimentResult& a,
                            const bcast::ExperimentResult& b) {
  EXPECT_EQ(a.index_name, b.index_name);
  EXPECT_EQ(a.packet_capacity, b.packet_capacity);
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.index_packets, b.index_packets);
  EXPECT_EQ(a.index_bytes, b.index_bytes);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.cycle_packets, b.cycle_packets);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.optimal_latency, b.optimal_latency);
  EXPECT_EQ(a.normalized_latency, b.normalized_latency);
  EXPECT_EQ(a.mean_tuning_index, b.mean_tuning_index);
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_tuning_noindex, b.mean_tuning_noindex);
  EXPECT_EQ(a.indexing_efficiency, b.indexing_efficiency);
  EXPECT_EQ(a.normalized_index_size, b.normalized_index_size);
  EXPECT_EQ(a.mean_retries, b.mean_retries);
  EXPECT_EQ(a.mean_lost_packets, b.mean_lost_packets);
  EXPECT_EQ(a.mean_corrupted_packets, b.mean_corrupted_packets);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_corrupted_packets, b.total_corrupted_packets);
  EXPECT_EQ(a.unrecoverable_queries, b.unrecoverable_queries);
  EXPECT_EQ(a.fallback_queries, b.fallback_queries);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.min_tuning_total, b.min_tuning_total);
  EXPECT_EQ(a.max_tuning_total, b.max_tuning_total);
  for (const char* name :
       {bcast::kLatencyHist, bcast::kTuningIndexHist,
        bcast::kTuningTotalHist, bcast::kRetriesHist,
        bcast::kLostPacketsHist, bcast::kCorruptedPacketsHist}) {
    SCOPED_TRACE(name);
    const Histogram* ha = a.metrics.FindHistogram(name);
    const Histogram* hb = b.metrics.FindHistogram(name);
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
    EXPECT_EQ(ha->Sum(), hb->Sum());
    EXPECT_EQ(ha->Min(), hb->Min());
    EXPECT_EQ(ha->Max(), hb->Max());
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      ASSERT_EQ(ha->BucketCount(i), hb->BucketCount(i)) << "bucket " << i;
    }
  }
}

// The tentpole's end-to-end contract: RunExperiment (Simulate latency,
// tuning, retries, histograms — every bit) is identical whether probes go
// through DTree::Probe or the arena, including under a faulty channel
// where the retry/fallback ladder is active.
TEST(ArenaSimulateTest, DTreeExperimentByteIdenticalWithArena) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  const sub::Subdivision& sub = d_r.value().subdivision;
  core::DTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = core::DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  auto arena_r = core::BuildDTreeArenaIndex(tree_r.value());
  ASSERT_TRUE(arena_r.ok()) << arena_r.status().ToString();

  // The ArenaIndex reports the tree's own identity.
  EXPECT_EQ(arena_r.value().name(), tree_r.value().name());
  EXPECT_EQ(arena_r.value().NumIndexPackets(),
            tree_r.value().NumIndexPackets());
  EXPECT_EQ(arena_r.value().IndexBytes(), tree_r.value().IndexBytes());
  EXPECT_EQ(arena_r.value().PacketCapacity(),
            tree_r.value().PacketCapacity());

  bcast::ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 4000;
  opt.seed = 42;
  opt.num_threads = 4;
  opt.loss.model = bcast::LossModel::kIid;
  opt.loss.loss_rate = 0.02;
  opt.loss.max_retries = 8;
  opt.loss.fallback_scan_cycles = 1;
  opt.loss.corruption.model = bcast::CorruptionModel::kIidBits;
  opt.loss.corruption.bit_error_rate = 1e-5;

  auto base_r = bcast::RunExperiment(tree_r.value(), sub, nullptr, opt);
  ASSERT_TRUE(base_r.ok()) << base_r.status().ToString();
  auto arena_res_r = bcast::RunExperiment(arena_r.value(), sub, nullptr, opt);
  ASSERT_TRUE(arena_res_r.ok()) << arena_res_r.status().ToString();
  ExpectResultsIdentical(base_r.value(), arena_res_r.value());
  EXPECT_GT(base_r.value().total_retries, 0);  // the ladder actually fired
}

// Baseline ArenaIndexes report the wrapped index's identity, so the
// experiment's size/layout columns are unchanged with the arena enabled.
TEST(ArenaSimulateTest, BaselineArenaIndexesReportBaseIdentity) {
  auto d_r = workload::MakeUniformDataset();
  ASSERT_TRUE(d_r.ok()) << d_r.status().ToString();
  const sub::Subdivision& sub = d_r.value().subdivision;
  const int n = sub.NumRegions();

  baselines::TrapMap::Options to;
  to.packet_capacity = 128;
  auto map_r = baselines::TrapMap::Build(sub, to);
  ASSERT_TRUE(map_r.ok());
  auto ta_r = baselines::BuildTrapMapArenaIndex(map_r.value(), n);
  ASSERT_TRUE(ta_r.ok()) << ta_r.status().ToString();
  EXPECT_EQ(ta_r.value().name(), map_r.value().name());
  EXPECT_EQ(ta_r.value().NumIndexPackets(), map_r.value().NumIndexPackets());
  EXPECT_EQ(ta_r.value().IndexBytes(), map_r.value().IndexBytes());

  baselines::TrianTree::Options ko;
  ko.packet_capacity = 128;
  auto kt_r = baselines::TrianTree::Build(sub, ko);
  ASSERT_TRUE(kt_r.ok());
  auto ka_r = baselines::BuildTrianTreeArenaIndex(kt_r.value(), n);
  ASSERT_TRUE(ka_r.ok()) << ka_r.status().ToString();
  EXPECT_EQ(ka_r.value().name(), kt_r.value().name());
  EXPECT_EQ(ka_r.value().NumIndexPackets(), kt_r.value().NumIndexPackets());

  baselines::RStarTree::Options ro;
  ro.packet_capacity = 128;
  auto rt_r = baselines::RStarTree::Build(sub, ro);
  ASSERT_TRUE(rt_r.ok());
  auto ra_r = baselines::BuildRStarArenaIndex(rt_r.value(), n);
  ASSERT_TRUE(ra_r.ok()) << ra_r.status().ToString();
  EXPECT_EQ(ra_r.value().name(), rt_r.value().name());
  EXPECT_EQ(ra_r.value().NumIndexPackets(), rt_r.value().NumIndexPackets());
}

}  // namespace
}  // namespace dtree
