// Tests for the lossy-channel fault-injection layer: the loss models
// themselves, the client's re-tune recovery in BroadcastChannel::Simulate,
// and the determinism contracts the experiment driver builds on —
// loss rate 0 reproduces the lossless simulation bit-for-bit, and lossy
// outcomes are a pure function of (seed, query stream), never thread count.

#include <cmath>

#include "broadcast/channel.h"
#include "broadcast/experiment.h"
#include "broadcast/loss.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

BroadcastChannel MakeChannel(const LossOptions& loss) {
  ChannelOptions o;
  o.packet_capacity = 1024;  // bucket = 1 packet
  o.m = 2;
  o.loss = loss;
  auto ch = BroadcastChannel::Create(/*index_packets=*/2, /*num_regions=*/4,
                                     o);
  EXPECT_TRUE(ch.ok()) << ch.status().ToString();
  return std::move(ch).value();
}

ProbeTrace MakeTrace() {
  ProbeTrace t;
  t.region = 2;
  t.packets = {0, 1};
  return t;
}

void ExpectSameOutcome(const BroadcastChannel::QueryOutcome& a,
                       const BroadcastChannel::QueryOutcome& b) {
  EXPECT_EQ(a.latency, b.latency);  // bitwise, not approximate
  EXPECT_EQ(a.tuning_probe, b.tuning_probe);
  EXPECT_EQ(a.tuning_index, b.tuning_index);
  EXPECT_EQ(a.tuning_data, b.tuning_data);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.unrecoverable, b.unrecoverable);
}

TEST(LossOptionsTest, ValidatesRanges) {
  LossOptions ok;
  EXPECT_TRUE(ValidateLossOptions(ok).ok());  // kNone
  ok.model = LossModel::kIid;
  ok.loss_rate = 0.3;
  EXPECT_TRUE(ValidateLossOptions(ok).ok());

  LossOptions bad = ok;
  bad.loss_rate = -0.1;
  EXPECT_FALSE(ValidateLossOptions(bad).ok());
  bad.loss_rate = 1.5;
  EXPECT_FALSE(ValidateLossOptions(bad).ok());
  bad.loss_rate = std::nan("");
  EXPECT_FALSE(ValidateLossOptions(bad).ok());
  bad = ok;
  bad.max_retries = -1;
  EXPECT_FALSE(ValidateLossOptions(bad).ok());
  bad = ok;
  bad.model = LossModel::kGilbertElliott;
  bad.p_good_to_bad = 0.0;
  bad.p_bad_to_good = 0.0;  // absorbing chain: no stationary distribution
  EXPECT_FALSE(ValidateLossOptions(bad).ok());
  bad.p_bad_to_good = 1.2;
  EXPECT_FALSE(ValidateLossOptions(bad).ok());

  // BroadcastChannel::Create enforces the same validation.
  ChannelOptions co;
  co.packet_capacity = 64;
  co.loss.model = LossModel::kIid;
  co.loss.loss_rate = 2.0;
  EXPECT_FALSE(BroadcastChannel::Create(1, 4, co).ok());
}

TEST(LossyChannelTest, ZeroLossRateMatchesLosslessBitForBit) {
  const BroadcastChannel lossless = MakeChannel(LossOptions{});
  LossOptions zero;
  zero.model = LossModel::kIid;
  zero.loss_rate = 0.0;
  zero.seed = 99;
  const BroadcastChannel lossy = MakeChannel(zero);
  const ProbeTrace trace = MakeTrace();

  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(lossless.cycle_packets()));
    const uint64_t stream = static_cast<uint64_t>(i);
    auto a = lossless.Simulate(trace, arrival, stream);
    auto b = lossy.Simulate(trace, arrival, stream);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameOutcome(a.value(), b.value());
    EXPECT_EQ(b.value().retries, 0);
    EXPECT_EQ(b.value().lost_packets, 0);
    EXPECT_FALSE(b.value().unrecoverable);
  }
}

TEST(LossyChannelTest, RetriesMonotoneNonDecreasingInLossRate) {
  // Effective retries (unrecoverable queries count as max_retries + 1 —
  // the whole budget burned) must be monotone in the i.i.d. loss rate for
  // a fixed seed: each attempt draws from its own sub-stream and reads a
  // fixed packet count, so the uniforms an attempt compares against the
  // rate are identical across rates.
  const double rates[] = {0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95};
  const ProbeTrace trace = MakeTrace();
  std::vector<BroadcastChannel> channels;
  LossOptions loss;
  loss.model = LossModel::kIid;
  loss.seed = 4242;
  for (double r : rates) {
    loss.loss_rate = r;
    channels.push_back(MakeChannel(loss));
  }
  Rng rng(17);
  int64_t increases = 0;
  for (int q = 0; q < 400; ++q) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(channels[0].cycle_packets()));
    const uint64_t stream = static_cast<uint64_t>(q);
    int prev = -1;
    for (const BroadcastChannel& ch : channels) {
      auto out = ch.Simulate(trace, arrival, stream);
      ASSERT_TRUE(out.ok());
      const int effective = out.value().unrecoverable
                                ? ch.loss_options().max_retries + 1
                                : out.value().retries;
      ASSERT_GE(effective, prev)
          << "retries decreased between consecutive loss rates (query " << q
          << ")";
      if (effective > prev && prev >= 0) ++increases;
      prev = effective;
    }
  }
  EXPECT_GT(increases, 0);  // the sweep actually exercises retries
}

TEST(LossyChannelTest, TotalLossIsUnrecoverable) {
  LossOptions all;
  all.model = LossModel::kIid;
  all.loss_rate = 1.0;
  all.max_retries = 5;
  const BroadcastChannel ch = MakeChannel(all);
  auto out = ch.Simulate(MakeTrace(), 0.5, 0);
  ASSERT_TRUE(out.ok());  // giving up is an outcome, not an error
  EXPECT_TRUE(out.value().unrecoverable);
  // Every probe read was lost until the budget ran out.
  EXPECT_EQ(out.value().tuning_probe, all.max_retries + 1);
  EXPECT_EQ(out.value().lost_packets, all.max_retries + 1);
  EXPECT_GT(out.value().latency, 0.0);
}

TEST(LossyChannelTest, RecoveryChargesLatencyAndTuning) {
  // With moderate loss, recovered queries must never be cheaper than the
  // lossless run: re-tuning waits for a later index repetition (latency)
  // and re-reads index packets (tuning time).
  const BroadcastChannel lossless = MakeChannel(LossOptions{});
  LossOptions loss;
  loss.model = LossModel::kIid;
  loss.loss_rate = 0.3;
  loss.seed = 7;
  const BroadcastChannel lossy = MakeChannel(loss);
  const ProbeTrace trace = MakeTrace();
  Rng rng(19);
  int retried = 0;
  for (int q = 0; q < 500; ++q) {
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(lossy.cycle_packets()));
    const uint64_t stream = static_cast<uint64_t>(q);
    auto a = lossless.Simulate(trace, arrival, stream);
    auto b = lossy.Simulate(trace, arrival, stream);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    if (b.value().unrecoverable) continue;
    EXPECT_GE(b.value().latency, a.value().latency);
    EXPECT_GE(b.value().tuning_total(), a.value().tuning_total());
    if (b.value().retries > 0) {
      ++retried;
      EXPECT_GT(b.value().lost_packets, 0);
      // A re-tune always re-reads packets, so tuning strictly grows.
      // Latency only GE: when the lost read was in one index copy and the
      // retry catches the next copy before the same bucket occurrence, the
      // (1, m) replication hides the loss entirely — by design.
      EXPECT_GT(b.value().tuning_total(), a.value().tuning_total());
    }
  }
  EXPECT_GT(retried, 0);
}

TEST(LossyChannelTest, GilbertElliottIsDeterministicPerStream) {
  LossOptions ge;
  ge.model = LossModel::kGilbertElliott;
  ge.p_good_to_bad = 0.2;
  ge.p_bad_to_good = 0.3;
  ge.loss_bad = 0.9;
  ge.seed = 31;
  const BroadcastChannel a = MakeChannel(ge);
  const BroadcastChannel b = MakeChannel(ge);
  const ProbeTrace trace = MakeTrace();
  bool streams_differ = false;
  BroadcastChannel::QueryOutcome first{};
  for (int q = 0; q < 200; ++q) {
    const uint64_t stream = static_cast<uint64_t>(q);
    auto oa = a.Simulate(trace, 0.5, stream);
    auto ob = b.Simulate(trace, 0.5, stream);
    ASSERT_TRUE(oa.ok());
    ASSERT_TRUE(ob.ok());
    // Two channels with identical options replay the same outcome...
    ExpectSameOutcome(oa.value(), ob.value());
    // ...while distinct query streams see independent channel fades.
    if (q == 0) {
      first = oa.value();
    } else if (oa.value().latency != first.latency ||
               oa.value().lost_packets != first.lost_packets) {
      streams_differ = true;
    }
  }
  EXPECT_TRUE(streams_differ);
}

struct ExperimentFixture {
  sub::Subdivision sub = test::RandomVoronoi(40, 23);
  core::DTree tree = [this] {
    core::DTree::Options o;
    o.packet_capacity = 256;
    return core::DTree::Build(sub, o).value();
  }();
};

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.mean_tuning_index, b.mean_tuning_index);
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_tuning_noindex, b.mean_tuning_noindex);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.mean_lost_packets, b.mean_lost_packets);
  EXPECT_EQ(a.unrecoverable_queries, b.unrecoverable_queries);
}

TEST(LossyExperimentTest, ZeroLossMatchesLosslessForAnyThreadCount) {
  ExperimentFixture f;
  ExperimentOptions base;
  base.packet_capacity = 256;
  base.num_queries = 3000;
  base.num_threads = 1;
  auto lossless = RunExperiment(f.tree, f.sub, nullptr, base);
  ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();

  for (int threads : {1, 8}) {
    ExperimentOptions opt = base;
    opt.num_threads = threads;
    opt.loss.model = LossModel::kIid;
    opt.loss.loss_rate = 0.0;
    opt.loss.seed = 12345;
    auto zero = RunExperiment(f.tree, f.sub, nullptr, opt);
    ASSERT_TRUE(zero.ok()) << zero.status().ToString();
    ExpectSameResult(lossless.value(), zero.value());
    EXPECT_EQ(zero.value().total_retries, 0);
    EXPECT_EQ(zero.value().unrecoverable_queries, 0);
    EXPECT_EQ(zero.value().mean_retries, 0.0);
  }
}

TEST(LossyExperimentTest, LossyResultsBitIdenticalAcrossThreads) {
  ExperimentFixture f;
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 3000;
  opt.loss.model = LossModel::kIid;
  opt.loss.loss_rate = 0.3;
  opt.loss.seed = 777;

  opt.num_threads = 1;
  auto serial = RunExperiment(f.tree, f.sub, nullptr, opt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_GT(serial.value().total_retries, 0);
  EXPECT_GT(serial.value().mean_lost_packets, 0.0);

  opt.num_threads = 4;
  auto parallel = RunExperiment(f.tree, f.sub, nullptr, opt);
  ASSERT_TRUE(parallel.ok());
  ExpectSameResult(serial.value(), parallel.value());
}

TEST(LossyExperimentTest, MeanRetriesGrowWithLossRate) {
  ExperimentFixture f;
  double prev = -1.0;
  for (double rate : {0.05, 0.2, 0.5}) {
    ExperimentOptions opt;
    opt.packet_capacity = 256;
    opt.num_queries = 2000;
    opt.loss.model = LossModel::kIid;
    opt.loss.loss_rate = rate;
    opt.loss.seed = 55;
    auto res = RunExperiment(f.tree, f.sub, nullptr, opt);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_GT(res.value().mean_retries, prev);
    prev = res.value().mean_retries;
  }
}

}  // namespace
}  // namespace dtree::bcast
