// Versioned-broadcast tests: the epoch wire stamp, the BroadcastTimeline
// client protocol (version-skew rung of the degradation ladder), and the
// VersionedProgram server (rebuild-per-epoch with the cold-rebuild
// bit-identity oracle).
//
// The two load-bearing contracts pinned here:
//  * Single-span BroadcastTimeline::Simulate is bit-identical to
//    BroadcastChannel::Simulate — field for field, draw for draw, trace
//    event for trace event — across the whole loss-config table. The
//    versioned path is a strict extension, never a behavioral fork.
//  * An epoch published by CommitEpoch is byte-identical to BuildEpoch run
//    cold on the same site set: there is no incremental repair path whose
//    drift could go unnoticed.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/frame.h"
#include "broadcast/trace.h"
#include "broadcast/versioned.h"
#include "common/rng.h"
#include "dtree/dtree.h"
#include "dtree/versioned.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

using core::DTree;
using core::SiteUpdate;
using core::VersionedProgram;
using geom::Point;

constexpr int kCapacity = 64;

// One epoch's broadcast fixture: subdivision, paged index, channel.
struct SpanRig {
  sub::Subdivision sub;
  DTree tree;
  BroadcastChannel channel;
};

SpanRig MakeSpanRig(int num_sites, uint64_t seed, const LossOptions& loss) {
  sub::Subdivision s = test::RandomVoronoi(num_sites, seed);
  DTree::Options topt;
  topt.packet_capacity = kCapacity;
  DTree t = DTree::Build(s, topt).value();
  ChannelOptions copt;
  copt.packet_capacity = kCapacity;
  copt.loss = loss;
  BroadcastChannel ch =
      BroadcastChannel::Create(t.NumIndexPackets(), s.NumRegions(), copt)
          .value();
  return SpanRig{std::move(s), std::move(t), std::move(ch)};
}

// The loss-config table the fleet differential tests sweep; reused here so
// the single-span oracle covers every ladder rung.
std::vector<LossOptions> LossConfigs() {
  std::vector<LossOptions> configs(4);
  // configs[0]: the paper's reliable medium.
  configs[1].model = LossModel::kIid;
  configs[1].loss_rate = 0.3;
  configs[1].seed = 12;
  configs[2].model = LossModel::kGilbertElliott;
  configs[2].loss_bad = 0.9;
  configs[2].seed = 13;
  configs[2].corruption.model = CorruptionModel::kIidBits;
  configs[2].corruption.bit_error_rate = 2e-5;
  configs[2].corruption.seed = 14;
  configs[2].fallback_scan_cycles = 2;
  configs[3].model = LossModel::kIid;
  configs[3].loss_rate = 1.0;
  configs[3].seed = 15;
  configs[3].max_retries = 3;
  return configs;
}

void ExpectSameOutcome(const BroadcastChannel::QueryOutcome& a,
                       const BroadcastChannel::QueryOutcome& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.tuning_probe, b.tuning_probe);
  EXPECT_EQ(a.tuning_index, b.tuning_index);
  EXPECT_EQ(a.tuning_data, b.tuning_data);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.corrupted_packets, b.corrupted_packets);
  EXPECT_EQ(a.fallback_scan, b.fallback_scan);
  EXPECT_EQ(a.unrecoverable, b.unrecoverable);
  EXPECT_EQ(a.give_up, b.give_up);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.epoch_switches, b.epoch_switches);
}

void ExpectSameEvents(const std::vector<TraceEvent>& a,
                      const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].pos, b[i].pos) << "event " << i;
    EXPECT_EQ(a[i].dur, b[i].dur) << "event " << i;
    EXPECT_EQ(a[i].packet, b[i].packet) << "event " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "event " << i;
    EXPECT_EQ(a[i].depth, b[i].depth) << "event " << i;
    EXPECT_EQ(a[i].attempt, b[i].attempt) << "event " << i;
  }
}

// Energy-accounting invariant every trace must satisfy: time from arrival
// to completion splits exactly into dozing and listening. Mirrors the
// tools/trace_summary.py --check invariant.
void ExpectDozePlusReadsEqualsLatency(const QueryTrace& qt) {
  double doze = 0.0;
  double reads = 0.0;
  for (const TraceEvent& e : qt.events) {
    switch (e.kind) {
      case TraceEventKind::kProbe:
      case TraceEventKind::kIndexRead:
        reads += 1.0;
        break;
      case TraceEventKind::kBucketRead:
      case TraceEventKind::kFallbackScan:
        reads += e.packet;
        break;
      case TraceEventKind::kDoze:
        doze += e.dur;
        break;
      default:
        break;
    }
  }
  EXPECT_NEAR(doze + reads, qt.latency, 1e-6)
      << "doze " << doze << " + reads " << reads;
}

TEST(BroadcastTimelineTest, SpanArithmetic) {
  SpanRig a = MakeSpanRig(40, 201, {});
  SpanRig b = MakeSpanRig(52, 202, {});
  SpanRig c = MakeSpanRig(33, 203, {});
  auto tl_r = BroadcastTimeline::Create({{&a.channel, 5, 2},
                                         {&b.channel, 6, 3},
                                         {&c.channel, 7, 1}});
  ASSERT_OK(tl_r.status());
  const BroadcastTimeline& tl = tl_r.value();
  ASSERT_EQ(tl.num_spans(), 3);
  const int64_t end_a = 2 * a.channel.cycle_packets();
  const int64_t end_b = end_a + 3 * b.channel.cycle_packets();
  EXPECT_EQ(tl.span_start(0), 0);
  EXPECT_EQ(tl.span_end(0), end_a);
  EXPECT_EQ(tl.span_start(1), end_a);
  EXPECT_EQ(tl.span_end(1), end_b);
  EXPECT_EQ(tl.span_start(2), end_b);
  EXPECT_EQ(tl.span_end(2), INT64_MAX);
  EXPECT_EQ(tl.span(0).epoch, 5);
  EXPECT_EQ(tl.span(2).epoch, 7);

  EXPECT_EQ(tl.SpanAt(0), 0);
  EXPECT_EQ(tl.SpanAt(end_a - 1), 0);
  EXPECT_EQ(tl.SpanAt(end_a), 1);
  EXPECT_EQ(tl.SpanAt(end_b - 1), 1);
  EXPECT_EQ(tl.SpanAt(end_b), 2);
  EXPECT_EQ(tl.SpanAt(end_b + 1'000'000), 2);
}

TEST(BroadcastTimelineTest, CreateRejectsMalformedSpans) {
  SpanRig a = MakeSpanRig(40, 204, {});
  EXPECT_FALSE(BroadcastTimeline::Create({}).ok());
  EXPECT_FALSE(BroadcastTimeline::Create({{nullptr, 0, 1}}).ok());
  // cycles < 1 on a non-last span; the last span's count is ignored.
  EXPECT_FALSE(
      BroadcastTimeline::Create({{&a.channel, 0, 0}, {&a.channel, 1, 1}})
          .ok());
  EXPECT_OK(
      BroadcastTimeline::Create({{&a.channel, 0, 1}, {&a.channel, 1, 0}})
          .status());
  // Mismatched packet capacities change the frame wire format mid-air.
  sub::Subdivision s2 = test::RandomVoronoi(40, 205);
  DTree::Options topt;
  topt.packet_capacity = 2 * kCapacity;
  DTree t2 = DTree::Build(s2, topt).value();
  ChannelOptions copt;
  copt.packet_capacity = 2 * kCapacity;
  BroadcastChannel wide =
      BroadcastChannel::Create(t2.NumIndexPackets(), s2.NumRegions(), copt)
          .value();
  EXPECT_FALSE(
      BroadcastTimeline::Create({{&a.channel, 0, 1}, {&wide, 1, 1}}).ok());
}

// The differential oracle: on a single-span timeline the epoch check never
// fires and Simulate must be bit-identical to BroadcastChannel::Simulate —
// outcome fields AND trace events — under every loss config.
TEST(BroadcastTimelineTest, SingleSpanMatchesChannelSimulate) {
  for (const LossOptions& loss : LossConfigs()) {
    SpanRig rig = MakeSpanRig(40, 206, loss);
    auto tl_r = BroadcastTimeline::Create({{&rig.channel, 0, 1}});
    ASSERT_OK(tl_r.status());
    const BroadcastTimeline& tl = tl_r.value();

    Rng rng(99);
    const double cycle = static_cast<double>(rig.channel.cycle_packets());
    for (int q = 0; q < 120; ++q) {
      const Point p = test::UnambiguousQueryPoint(rig.sub, &rng);
      const ProbeTrace trace = rig.tree.Probe(p).value();
      const double arrival = rng.Uniform(0.0, cycle);
      const uint64_t stream = static_cast<uint64_t>(q);

      QueryTrace qt_chan, qt_tl;
      auto chan_r = rig.channel.Simulate(trace, arrival, stream, &qt_chan);
      auto tl_out = tl.Simulate({trace}, arrival, stream, &qt_tl);
      ASSERT_OK(chan_r.status());
      ASSERT_OK(tl_out.status());
      ExpectSameOutcome(chan_r.value(), tl_out.value());
      EXPECT_EQ(tl_out.value().epoch, 0);
      EXPECT_EQ(tl_out.value().epoch_switches, 0);
      ExpectSameEvents(qt_chan.events, qt_tl.events);
      EXPECT_FALSE(qt_chan.versioned);
      EXPECT_TRUE(qt_tl.versioned);
      ExpectDozePlusReadsEqualsLatency(qt_tl);
    }
  }
}

// Two-epoch timeline fixture with different subdivisions (and hence
// different cycle layouts, bucket sizes, and region numbering) on the two
// sides of the switch.
struct TwoEpochRig {
  // Heap-allocated so the timeline's borrowed channel pointers stay valid
  // when the rig is returned by value.
  std::unique_ptr<SpanRig> e0;
  std::unique_ptr<SpanRig> e1;
  BroadcastTimeline tl;
};

TwoEpochRig MakeTwoEpochRig(const LossOptions& loss, int64_t cycles0) {
  auto e0 = std::make_unique<SpanRig>(MakeSpanRig(40, 207, loss));
  auto e1 = std::make_unique<SpanRig>(MakeSpanRig(55, 208, loss));
  BroadcastTimeline tl =
      BroadcastTimeline::Create(
          {{&e0->channel, 0, cycles0}, {&e1->channel, 1, 1}})
          .value();
  return TwoEpochRig{std::move(e0), std::move(e1), std::move(tl)};
}

std::vector<ProbeTrace> ProbeBoth(const TwoEpochRig& rig, const Point& p) {
  return {rig.e0->tree.Probe(p).value(), rig.e1->tree.Probe(p).value()};
}

// Sweep arrivals across the epoch boundary and assert the protocol
// invariants: a completed query's epoch matches the span its last read
// fell in, switches stay within budget, never a wrong answer (the answer
// region always comes from the trace of the epoch the client ended in),
// and the energy accounting stays exact through switches.
TEST(BroadcastTimelineTest, EpochSwitchAdoptsNewEpoch) {
  // Coverage accumulates across the config sweep: the harsh configs (loss
  // 1.0 completes nothing) contribute invariant checks, the clean config
  // guarantees both rung exercises below.
  int switched_and_completed = 0;
  int adopted_at_probe = 0;
  for (const LossOptions& loss : LossConfigs()) {
    TwoEpochRig rig = MakeTwoEpochRig(loss, 2);
    const int64_t boundary = rig.tl.span_end(0);
    const double cycle0 = static_cast<double>(rig.e0->channel.cycle_packets());

    Rng rng(100);
    for (int q = 0; q < 300; ++q) {
      const Point p = test::UnambiguousQueryPoint(rig.e0->sub, &rng);
      const std::vector<ProbeTrace> traces = ProbeBoth(rig, p);
      // Arrivals concentrated in span 0's last cycle so many queries
      // straddle the boundary; some land past it entirely.
      const double arrival =
          static_cast<double>(boundary) - cycle0 +
          rng.Uniform(0.0, 1.5 * cycle0);
      const uint64_t stream = static_cast<uint64_t>(q);

      QueryTrace qt;
      auto out_r = rig.tl.Simulate(traces, arrival, stream, &qt);
      ASSERT_OK(out_r.status());
      const BroadcastChannel::QueryOutcome& out = out_r.value();

      EXPECT_TRUE(qt.versioned);
      EXPECT_EQ(qt.epoch, out.epoch);
      EXPECT_EQ(qt.epoch_switches, out.epoch_switches);
      EXPECT_LE(out.epoch_switches, loss.max_epoch_switches + 1);
      ExpectDozePlusReadsEqualsLatency(qt);

      int switch_events = 0;
      for (const TraceEvent& e : qt.events) {
        if (e.kind == TraceEventKind::kEpochSwitch) {
          ++switch_events;
          EXPECT_EQ(e.attempt, switch_events);
          EXPECT_EQ(e.packet, 1);  // only epoch 1 can be newly observed
        }
      }
      EXPECT_EQ(switch_events, out.epoch_switches);

      if (!out.unrecoverable) {
        // The answer belongs to the epoch whose packets the client last
        // trusted: the span containing the final read.
        const int64_t done =
            static_cast<int64_t>(std::llround(arrival + out.latency));
        EXPECT_EQ(out.epoch, rig.tl.span(rig.tl.SpanAt(done - 1)).epoch);
        if (out.epoch_switches > 0) ++switched_and_completed;
        if (out.epoch == 1 && out.epoch_switches == 0) ++adopted_at_probe;
      } else {
        EXPECT_NE(out.give_up, GiveUpStage::kNone);
      }
    }
  }
  // The sweep must actually exercise the rung: queries that switched and
  // still completed, and queries that tuned in past the boundary and
  // adopted epoch 1 at the probe without consuming a switch.
  EXPECT_GT(switched_and_completed, 0);
  EXPECT_GT(adopted_at_probe, 0);
}

// Budget 0: the first observed switch exhausts the rung. The query must
// give up with kEpochChurn — reporting the newly observed epoch, never a
// wrong answer — and queries that never see the boundary stay clean.
TEST(BroadcastTimelineTest, EpochChurnBudgetExhaustionGivesUp) {
  LossOptions loss;  // clean channel: churn is the only failure mode
  loss.max_epoch_switches = 0;
  TwoEpochRig rig = MakeTwoEpochRig(loss, 2);
  const int64_t boundary = rig.tl.span_end(0);
  const double cycle0 = static_cast<double>(rig.e0->channel.cycle_packets());

  Rng rng(101);
  int churned = 0;
  for (int q = 0; q < 200; ++q) {
    const Point p = test::UnambiguousQueryPoint(rig.e0->sub, &rng);
    const std::vector<ProbeTrace> traces = ProbeBoth(rig, p);
    const double arrival = static_cast<double>(boundary) - cycle0 +
                           rng.Uniform(0.0, cycle0);
    QueryTrace qt;
    auto out_r =
        rig.tl.Simulate(traces, arrival, static_cast<uint64_t>(q), &qt);
    ASSERT_OK(out_r.status());
    const BroadcastChannel::QueryOutcome& out = out_r.value();
    EXPECT_EQ(out.retries, 0);
    EXPECT_EQ(out.lost_packets, 0);
    EXPECT_EQ(out.corrupted_packets, 0);
    if (out.epoch_switches > 0) {
      ++churned;
      EXPECT_EQ(out.epoch_switches, 1);
      EXPECT_TRUE(out.unrecoverable);
      EXPECT_EQ(out.give_up, GiveUpStage::kEpochChurn);
      EXPECT_EQ(out.epoch, 1);  // the epoch that revealed the churn
      EXPECT_GT(out.latency, 0.0);
    } else {
      EXPECT_FALSE(out.unrecoverable);
    }
    ExpectDozePlusReadsEqualsLatency(qt);
  }
  EXPECT_GT(churned, 0);
}

// ---------------------------------------------------------------------------
// Wire format: the epoch stamp rides inside the CRC's coverage.

TEST(FrameEpochTest, EpochStampRoundTripsAndGates) {
  Rng rng(102);
  std::vector<std::vector<uint8_t>> packets(3);
  for (auto& pkt : packets) {
    pkt.resize(32);
    for (auto& byte : pkt) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
  }
  const auto frames = FramePackets(packets, 7);
  ASSERT_EQ(frames.size(), packets.size());
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.size(), 32 + kFrameOverheadBytes);
    EXPECT_OK(VerifyFrame(frame));
    EXPECT_EQ(FrameEpoch(frame), 7);
  }

  // Matching (or unchecked) expected epoch strips cleanly.
  auto match = UnframePackets(frames, 7);
  ASSERT_OK(match.status());
  EXPECT_EQ(match.value(), packets);
  auto unchecked = UnframePackets(frames);
  ASSERT_OK(unchecked.status());
  EXPECT_EQ(unchecked.value(), packets);

  // A CRC-valid frame from another epoch is version skew, not corruption.
  auto skew = UnframePackets(frames, 6);
  ASSERT_FALSE(skew.ok());
  EXPECT_EQ(skew.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FrameEpochTest, AnySingleBitFlipBeatsTheEpochCheck) {
  // Fault ordering contract: corruption is detected BEFORE the epoch
  // check, so a flipped bit anywhere in the frame — payload, epoch stamp,
  // or CRC — surfaces as kDataLoss regardless of the expected epoch.
  std::vector<std::vector<uint8_t>> packets(1);
  packets[0].assign(32, 0xA5);
  const auto clean = FramePackets(packets, 7);
  const size_t bits = clean[0].size() * 8;
  for (size_t bit = 0; bit < bits; ++bit) {
    auto frames = clean;
    FlipBit(&frames[0], bit);
    for (int expected : {-1, 6, 7}) {
      auto r = UnframePackets(frames, expected);
      ASSERT_FALSE(r.ok()) << "bit " << bit << " expected " << expected;
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss)
          << "bit " << bit << " expected " << expected;
    }
  }
}

// ---------------------------------------------------------------------------
// VersionedProgram: the rebuild-per-epoch server.

VersionedProgram::Options MakeProgramOptions() {
  VersionedProgram::Options opt;
  opt.service_area = workload::DefaultServiceArea();
  opt.channel.packet_capacity = 128;
  opt.tree.packet_capacity = 128;
  return opt;
}

std::vector<Point> MakeSites(int n, uint64_t seed) {
  Rng rng(seed);
  return workload::UniformPoints(n, workload::DefaultServiceArea(), &rng);
}

TEST(VersionedProgramTest, CommitMatchesColdRebuildBitForBit) {
  const auto options = MakeProgramOptions();
  const std::vector<Point> sites = MakeSites(30, 301);
  auto vp_r = VersionedProgram::Create(sites, options);
  ASSERT_OK(vp_r.status());
  VersionedProgram& vp = *vp_r.value();

  auto epoch0 = vp.Acquire();
  ASSERT_NE(epoch0, nullptr);
  EXPECT_EQ(epoch0->epoch, 0);
  EXPECT_EQ(epoch0->sites.size(), sites.size());
  EXPECT_EQ(vp.previous(), nullptr);

  // Queue a batch: one insert, one delete (of the site nearest sites[0]).
  const std::vector<SiteUpdate> batch = {
      SiteUpdate::Insert(MakeSites(1, 302)[0]),
      SiteUpdate::Delete(sites[0]),
  };
  for (const SiteUpdate& u : batch) vp.Enqueue(u);
  EXPECT_EQ(vp.pending(), 2u);

  auto committed_r = vp.CommitEpoch();
  ASSERT_OK(committed_r.status());
  const auto committed = committed_r.value();
  EXPECT_EQ(vp.pending(), 0u);
  EXPECT_EQ(committed->epoch, 1);
  EXPECT_EQ(vp.Acquire(), committed);
  EXPECT_EQ(vp.previous(), epoch0);  // last two epochs stay resident

  // The oracle: the published epoch must be byte-identical to a cold
  // rebuild on the same updated site set.
  auto expected_sites_r = VersionedProgram::ApplyUpdates(sites, batch);
  ASSERT_OK(expected_sites_r.status());
  auto cold_r =
      VersionedProgram::BuildEpoch(expected_sites_r.value(), options, 1);
  ASSERT_OK(cold_r.status());
  const auto& cold = *cold_r.value();

  EXPECT_EQ(committed->sites, cold.sites);
  EXPECT_EQ(committed->channel.cycle_packets(), cold.channel.cycle_packets());
  EXPECT_EQ(committed->program.epoch(), 1);
  ASSERT_EQ(committed->program.num_frames(), cold.program.num_frames());
  for (int64_t i = 0; i < cold.program.num_frames(); ++i) {
    const auto a = committed->program.frame(i);
    const auto b = cold.program.frame(i);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
        << "frame " << i << " diverges from the cold rebuild";
  }

  // An empty commit still rolls the epoch (new stamp, same sites).
  auto empty_r = vp.CommitEpoch();
  ASSERT_OK(empty_r.status());
  EXPECT_EQ(empty_r.value()->epoch, 2);
  EXPECT_EQ(empty_r.value()->sites, committed->sites);
  EXPECT_EQ(vp.previous(), committed);
}

TEST(VersionedProgramTest, FailedCommitLeavesLiveEpochUntouched) {
  const auto options = MakeProgramOptions();
  const std::vector<Point> sites = MakeSites(20, 303);
  auto vp_r = VersionedProgram::Create(sites, options);
  ASSERT_OK(vp_r.status());
  VersionedProgram& vp = *vp_r.value();
  const auto live = vp.Acquire();

  // A duplicate site violates sub::kMinSiteSeparation in the Voronoi
  // build; the commit must fail, discard the batch, and leave the live
  // epoch untouched.
  vp.Enqueue(SiteUpdate::Insert(sites[3]));
  auto bad = vp.CommitEpoch();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(vp.Acquire(), live);
  EXPECT_EQ(vp.previous(), nullptr);
  EXPECT_EQ(vp.pending(), 0u);  // the poisoned batch is gone

  // The server recovers: a valid batch commits on the next boundary.
  vp.Enqueue(SiteUpdate::Insert(MakeSites(1, 304)[0]));
  auto good = vp.CommitEpoch();
  ASSERT_OK(good.status());
  EXPECT_EQ(good.value()->epoch, 1);
  EXPECT_EQ(good.value()->sites.size(), sites.size() + 1);
}

TEST(VersionedProgramTest, ApplyUpdatesEnforcesTheSiteFloor) {
  const std::vector<Point> three = MakeSites(3, 305);
  // Deleting below kMinSites is rejected; deleting from nothing too.
  EXPECT_FALSE(
      VersionedProgram::ApplyUpdates(three, {SiteUpdate::Delete(three[0])})
          .ok());
  EXPECT_FALSE(
      VersionedProgram::ApplyUpdates({}, {SiteUpdate::Delete({1, 1})}).ok());

  // Delete removes the nearest site (here: an exact match).
  const std::vector<Point> four = MakeSites(4, 306);
  auto r = VersionedProgram::ApplyUpdates(four, {SiteUpdate::Delete(four[2])});
  ASSERT_OK(r.status());
  ASSERT_EQ(r.value().size(), 3u);
  for (const Point& p : r.value()) {
    EXPECT_FALSE(p.x == four[2].x && p.y == four[2].y);
  }
}

// TSan target: readers acquire snapshots while the single writer commits.
// Readers never block, snapshots stay internally consistent, and the
// epoch sequence is monotone from any reader's point of view.
TEST(VersionedProgramTest, ConcurrentAcquireWhileCommitting) {
  const auto options = MakeProgramOptions();
  auto vp_r = VersionedProgram::Create(MakeSites(20, 307), options);
  ASSERT_OK(vp_r.status());
  VersionedProgram& vp = *vp_r.value();

  constexpr int kCommits = 5;
  const std::vector<Point> inserts = MakeSites(kCommits, 308);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&vp, &done] {
      uint16_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = vp.Acquire();
        ASSERT_NE(snap, nullptr);
        EXPECT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        // Touch immutable state across the swap: frame count and a frame
        // byte — TSan flags any rebuild racing a reader.
        EXPECT_GT(snap->program.num_frames(), 0);
        (void)snap->program.frame(0)[0];
        // previous() is loaded separately from Acquire(), so a commit may
        // land between the two loads — no cross-snapshot ordering can be
        // asserted, only that the resident arena stays readable.
        auto prev = vp.previous();
        if (prev != nullptr) {
          EXPECT_GT(prev->program.num_frames(), 0);
          (void)prev->program.frame(0)[0];
        }
      }
    });
  }
  for (int c = 0; c < kCommits; ++c) {
    vp.Enqueue(SiteUpdate::Insert(inserts[static_cast<size_t>(c)]));
    auto r = vp.CommitEpoch();
    ASSERT_OK(r.status());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(vp.Acquire()->epoch, kCommits);
  EXPECT_EQ(vp.previous()->epoch, kCommits - 1);
}

}  // namespace
}  // namespace dtree::bcast
