// Build-pipeline scaling tests: the grid-pruned parallel Voronoi must be
// bit-identical to the pre-grid reference implementation on the paper
// datasets at every thread count, the O(n*k) ear clipping must emit the
// exact triangle sequence of the old O(n^2) scan, the accelerated dataset
// generators must keep producing byte-identical point sets, and the whole
// pipeline must survive SCALE sizes (N=10k here; the bench sweeps to 100k).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "geom/predicates.h"
#include "subdivision/subdivision.h"
#include "subdivision/triangulate.h"
#include "subdivision/voronoi.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;
using geom::Triangle;

/// FNV-1a over the raw little-endian coordinate bytes: pins generator
/// output bitwise without listing thousands of doubles.
uint64_t HashPoints(const std::vector<Point>& pts) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Point& p : pts) {
    mix(p.x);
    mix(p.y);
  }
  return h;
}

/// The paper-dataset site sets exactly as MakePaperDatasets draws them
/// (it passes seed 7 to all three makers).
std::vector<std::pair<const char*, std::vector<Point>>> PaperSiteSets() {
  const BBox area = workload::DefaultServiceArea();
  std::vector<std::pair<const char*, std::vector<Point>>> out;
  {
    Rng rng(7);
    out.emplace_back("UNIFORM", workload::UniformPoints(1000, area, &rng));
  }
  {
    Rng rng(7);
    out.emplace_back("HOSPITAL",
                     workload::ClusteredPoints(185, area, 12, 0.035, &rng));
  }
  {
    Rng rng(7);
    out.emplace_back("PARK",
                     workload::ClusteredPoints(1102, area, 25, 0.03, &rng));
  }
  return out;
}

TEST(BuildScalingTest, GridVoronoiBitIdenticalToReferenceAcrossThreadCounts) {
  const BBox area = workload::DefaultServiceArea();
  for (const auto& [name, sites] : PaperSiteSets()) {
    auto ref = sub::VoronoiCellsReference(sites, area);
    ASSERT_TRUE(ref.ok()) << name << ": " << ref.status().ToString();
    for (const int threads : {1, 4, 8}) {
      sub::VoronoiOptions opts;
      opts.num_threads = threads;
      auto cells = sub::VoronoiCells(sites, area, opts);
      ASSERT_TRUE(cells.ok()) << name << ": " << cells.status().ToString();
      ASSERT_EQ(cells.value().size(), ref.value().size());
      for (size_t i = 0; i < ref.value().size(); ++i) {
        const auto& a = ref.value()[i].ring();
        const auto& b = cells.value()[i].ring();
        ASSERT_EQ(a.size(), b.size())
            << name << " cell " << i << " at " << threads << " threads";
        for (size_t v = 0; v < a.size(); ++v) {
          // operator== compares the doubles exactly — bit-identity, not
          // tolerance.
          ASSERT_EQ(a[v], b[v])
              << name << " cell " << i << " vertex " << v << " at "
              << threads << " threads";
        }
      }
    }
  }
}

TEST(BuildScalingTest, DatasetGeneratorsByteIdenticalAfterGridAcceleration) {
  // Bitwise pins of the generator output. If these change, every golden
  // number downstream (bench digests, experiment goldens) changes too:
  // treat a mismatch as a broken generator, not a stale test.
  const auto sets = PaperSiteSets();
  EXPECT_EQ(HashPoints(sets[0].second), 8406621340049087471ull);
  EXPECT_EQ(HashPoints(sets[1].second), 2011159644969337360ull);
  EXPECT_EQ(HashPoints(sets[2].second), 17708160709302097395ull);
}

TEST(BuildScalingTest, ScaleDatasetBuildsAndValidatesAt10k) {
  auto d = workload::MakeScaleDataset(10000, workload::ScaleDistribution::kUniform);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d.value().name, "SCALE-U10000");
  EXPECT_EQ(d.value().subdivision.NumRegions(), 10000);
  EXPECT_OK(d.value().subdivision.Validate());
}

TEST(BuildScalingTest, ClusteredScaleDatasetBuildsAndValidates) {
  auto d = workload::MakeScaleDataset(
      5000, workload::ScaleDistribution::kClustered);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d.value().name, "SCALE-C5000");
  EXPECT_EQ(d.value().subdivision.NumRegions(), 5000);
  EXPECT_OK(d.value().subdivision.Validate());
}

// ---------------------------------------------------------------------------
// Triangulation equivalence: the linked-list + blocker-set ear clipper must
// emit the exact triangle sequence of the old erase-from-a-vector O(n^2)
// scan. The reference below is that old implementation, kept verbatim.

bool RefBlocksEar(const Point& prev, const Point& cur, const Point& next,
                  const Point& v) {
  constexpr double kEps = geom::kMergeEps;
  if (geom::NearlyEqual(v, prev, kEps) || geom::NearlyEqual(v, cur, kEps) ||
      geom::NearlyEqual(v, next, kEps)) {
    return false;
  }
  Triangle t(prev, cur, next);
  if (!t.Contains(v)) return false;
  if (geom::DistanceToSegment(prev, cur, v) <= kEps) return false;
  if (geom::DistanceToSegment(cur, next, v) <= kEps) return false;
  return true;
}

Status RefEarClip(const std::vector<Point>& ring, std::vector<Triangle>* out) {
  const size_t n = ring.size();
  if (n < 3) return Status::InvalidArgument("ring with fewer than 3 vertices");
  {
    Polygon p(ring);
    if (p.SignedArea() <= 0.0) {
      return Status::InvalidArgument("ear clipping requires a CCW ring");
    }
  }
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  out->reserve(out->size() + n - 2);
  while (idx.size() > 3) {
    bool clipped = false;
    for (size_t k = 0; k < idx.size(); ++k) {
      const Point& prev = ring[idx[(k + idx.size() - 1) % idx.size()]];
      const Point& cur = ring[idx[k]];
      const Point& next = ring[idx[(k + 1) % idx.size()]];
      if (geom::Orient(prev, cur, next) <= 0) continue;
      bool ear = true;
      for (size_t j = 0; j < idx.size(); ++j) {
        if (j == k || idx[j] == idx[(k + idx.size() - 1) % idx.size()] ||
            idx[j] == idx[(k + 1) % idx.size()]) {
          continue;
        }
        if (RefBlocksEar(prev, cur, next, ring[idx[j]])) {
          ear = false;
          break;
        }
      }
      if (!ear) continue;
      out->emplace_back(prev, cur, next);
      idx.erase(idx.begin() + static_cast<std::ptrdiff_t>(k));
      clipped = true;
      break;
    }
    if (!clipped) {
      return Status::Internal("ear clipping stalled on a degenerate ring");
    }
  }
  Triangle last(ring[idx[0]], ring[idx[1]], ring[idx[2]]);
  if (last.SignedArea() <= 0.0) {
    return Status::Internal("final ear-clipping triangle is degenerate");
  }
  out->push_back(last);
  return Status::OK();
}

void ExpectSameTriangulation(const std::vector<Point>& ring) {
  std::vector<Triangle> ref_tris, new_tris;
  const Status ref_st = RefEarClip(ring, &ref_tris);
  const Status new_st = sub::EarClipTriangulate(ring, &new_tris);
  ASSERT_EQ(ref_st.ok(), new_st.ok()) << ref_st.ToString() << " vs "
                                      << new_st.ToString();
  if (!ref_st.ok()) return;
  ASSERT_EQ(ref_tris.size(), new_tris.size());
  for (size_t i = 0; i < ref_tris.size(); ++i) {
    for (int v = 0; v < 3; ++v) {
      ASSERT_EQ(ref_tris[i].v[v], new_tris[i].v[v])
          << "triangle " << i << " vertex " << v;
    }
  }
}

/// Star-shaped polygon around a center: strictly increasing angles with a
/// random radius per vertex, so roughly half the vertices are reflex.
std::vector<Point> StarPolygon(int n, Rng* rng) {
  std::vector<Point> ring;
  ring.reserve(n);
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (int i = 0; i < n; ++i) {
    const double base = two_pi * i / n;
    const double ang = base + rng->Uniform(0.05, 0.9) * (two_pi / n);
    const double r = rng->Uniform(0.25, 1.0);
    ring.push_back({50.0 + 40.0 * r * std::cos(ang),
                    50.0 + 40.0 * r * std::sin(ang)});
  }
  return ring;
}

TEST(BuildScalingTest, EarClipMatchesQuadraticReferenceOnStarPolygons) {
  Rng rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(4, 60));
    ExpectSameTriangulation(StarPolygon(n, &rng));
  }
}

TEST(BuildScalingTest, EarClipMatchesQuadraticReferenceOnVoronoiRings) {
  // Region rings carry T-junction split vertices (collinear runs), the
  // exact degeneracy the blocker set must keep classifying as blocking.
  const sub::Subdivision sub = test::RandomVoronoi(150, 2024);
  for (int i = 0; i < sub.NumRegions(); ++i) {
    std::vector<Point> ring;
    for (int v : sub.Ring(i)) ring.push_back(sub.vertices()[v]);
    ExpectSameTriangulation(ring);
  }
}

TEST(BuildScalingTest, EarClipMatchesReferenceOnCollinearConvexRings) {
  // Rectangle with interior edge points: every non-corner vertex is
  // straight (Orient == 0), the FanTriangulate fallback shape.
  std::vector<Point> ring;
  for (int i = 0; i < 4; ++i) ring.push_back({static_cast<double>(i), 0.0});
  for (int i = 0; i < 3; ++i) ring.push_back({4.0, static_cast<double>(i)});
  for (int i = 4; i > 0; --i) ring.push_back({static_cast<double>(i), 3.0});
  for (int i = 3; i > 0; --i) ring.push_back({0.0, static_cast<double>(i)});
  ExpectSameTriangulation(ring);
}

}  // namespace
}  // namespace dtree
