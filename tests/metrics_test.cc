// Histogram / Counter / MetricsRegistry: fixed bucket layout, exact
// min/max/mean, bounded-relative-error percentiles, and shard-order
// independence of every count-derived statistic.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

TEST(HistogramTest, BucketLayoutIsFixedAndMonotone) {
  // Bucket 0 holds everything below 1 (including 0 and negatives).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1);
  // Index is non-decreasing in the value and bounds bracket the value.
  int prev = 0;
  for (double v = 0.5; v < 1e10; v *= 1.31) {
    const int i = Histogram::BucketIndex(v);
    EXPECT_GE(i, prev);
    EXPECT_LT(i, Histogram::kNumBuckets);
    if (i > 0 && i < Histogram::kNumBuckets - 1) {
      EXPECT_LE(Histogram::BucketLower(i), v);
      EXPECT_GT(Histogram::BucketUpper(i), v);
    }
    prev = i;
  }
  // Overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ExactCountSumMinMax) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  for (double v : {4.0, 1.5, 100.25, 0.0, 7.0}) h.Add(v);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 100.25);
  EXPECT_DOUBLE_EQ(h.Sum(), 112.75);
  EXPECT_DOUBLE_EQ(h.Mean(), 112.75 / 5);
}

TEST(HistogramTest, PercentileWithinBucketResolution) {
  Histogram h;
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Uniform(1.0, 5000.0);
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    const double exact =
        values[static_cast<size_t>(std::ceil(p * values.size())) - 1];
    const double approx = h.Percentile(p);
    // One bucket is a factor of 2^(1/8) ≈ 1.0905 wide; interpolation
    // keeps the estimate within one bucket of the exact rank value.
    EXPECT_GT(approx, exact / 1.10) << "p=" << p;
    EXPECT_LT(approx, exact * 1.10) << "p=" << p;
  }
  EXPECT_EQ(h.Percentile(1.0), h.Max());
  // p=0 clamps to the first sample's bucket, never below the min.
  EXPECT_GE(h.Percentile(0.0), h.Min());
}

TEST(HistogramTest, MergeOrderDoesNotChangeCountStatistics) {
  // Split one sample stream across shards, merge the shards in two
  // different orders: every percentile must be identical (integer counts
  // commute), matching the experiment driver's determinism contract.
  Rng rng(1234);
  std::vector<Histogram> shards(8);
  Histogram reference;
  for (int i = 0; i < 50000; ++i) {
    const double v = std::exp(rng.Uniform(0.0, 12.0));
    shards[static_cast<size_t>(rng.UniformInt(0, 7))].Add(v);
    reference.Add(v);
  }
  Histogram fwd;
  for (const Histogram& s : shards) fwd.Merge(s);
  Histogram rev;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev.Merge(*it);

  EXPECT_EQ(fwd.TotalCount(), reference.TotalCount());
  EXPECT_EQ(fwd.Min(), rev.Min());
  EXPECT_EQ(fwd.Max(), rev.Max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(fwd.BucketCount(i), rev.BucketCount(i));
    ASSERT_EQ(fwd.BucketCount(i), reference.BucketCount(i));
  }
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(fwd.Percentile(p), rev.Percentile(p));
    EXPECT_EQ(fwd.Percentile(p), reference.Percentile(p));
  }
}

TEST(HistogramTest, MergeIntoEmptyAndFromEmpty) {
  Histogram a;
  Histogram empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.TotalCount(), 1u);
  EXPECT_EQ(a.Min(), 3.0);
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.TotalCount(), 1u);
  EXPECT_EQ(b.Min(), 3.0);
  EXPECT_EQ(b.Max(), 3.0);
}

TEST(HistogramTest, EmptyPercentileIsZeroAtEveryRank) {
  Histogram h;
  for (double p : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.Percentile(p), 0.0) << "p=" << p;
  }
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, SingleSamplePercentilesCollapseToTheSample) {
  // With one sample, [min, max] pins every interpolated rank to the
  // sample itself — bitwise, not within bucket resolution.
  for (double v : {0.0, 1.0, 37.5, 1e9}) {
    Histogram h;
    h.Add(v);
    for (double p : {0.0, 0.5, 0.99, 1.0}) {
      EXPECT_EQ(h.Percentile(p), v) << "v=" << v << " p=" << p;
    }
    EXPECT_EQ(h.Min(), v);
    EXPECT_EQ(h.Max(), v);
    EXPECT_EQ(h.Mean(), v);
  }
}

TEST(CounterTest, AddAndMerge) {
  Counter a;
  a.Add();
  a.Add(41);
  Counter b;
  b.Add(8);
  a.Merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(MetricsRegistryTest, CreatesOnDemandAndMergesByName) {
  MetricsRegistry shard0;
  MetricsRegistry shard1;
  shard0.histogram("latency")->Add(10.0);
  shard0.counter("queries")->Add(1);
  shard1.histogram("latency")->Add(20.0);
  shard1.histogram("tuning")->Add(5.0);
  shard1.counter("queries")->Add(2);

  MetricsRegistry merged;
  merged.MergeOrdered(shard0);
  merged.MergeOrdered(shard1);
  ASSERT_NE(merged.FindHistogram("latency"), nullptr);
  EXPECT_EQ(merged.FindHistogram("latency")->TotalCount(), 2u);
  EXPECT_EQ(merged.FindHistogram("latency")->Min(), 10.0);
  EXPECT_EQ(merged.FindHistogram("latency")->Max(), 20.0);
  ASSERT_NE(merged.FindHistogram("tuning"), nullptr);
  EXPECT_EQ(merged.FindHistogram("tuning")->TotalCount(), 1u);
  EXPECT_EQ(merged.FindCounter("queries")->value(), 3u);
  EXPECT_EQ(merged.FindHistogram("absent"), nullptr);
  EXPECT_EQ(merged.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistryTest, PointersStableAcrossInsertion) {
  MetricsRegistry reg;
  Histogram* a = reg.histogram("a");
  a->Add(1.0);
  for (int i = 0; i < 100; ++i) {
    reg.histogram("h" + std::to_string(i));
  }
  EXPECT_EQ(a, reg.histogram("a"));
  EXPECT_EQ(a->TotalCount(), 1u);
}

}  // namespace
}  // namespace dtree
