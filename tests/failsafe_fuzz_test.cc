// Deterministic failure-injection fuzz for every air index's byte-level
// decoder (D-tree, trian-tree, trap-tree, r*-tree) plus the shared CRC
// framing layer. Each index's packets are mutated (bit flips on framed
// and raw streams, truncation) for >= 10k seeded iterations; every decode
// must terminate within its budget and return a Status or a plain region
// id — never crash, hang, or read out of bounds (the suite runs under
// ASan+UBSan in CI).

#include <cstdint>
#include <functional>
#include <vector>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/frame.h"
#include "common/rng.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree {
namespace {

using geom::Point;

constexpr int kFuzzIterations = 10000;
constexpr int kCapacity = 128;
constexpr int kRegions = 40;
constexpr uint64_t kFixtureSeed = 71;

/// Decoder under test: (packets, framed, query, read_log) -> region.
using QueryFn = std::function<Result<int>(
    const std::vector<std::vector<uint8_t>>&, bool, const Point&,
    std::vector<int>*)>;

/// Clean-stream property: the hardened decoder answers exactly like the
/// in-memory structure away from region borders (f32 narrowing can flip
/// decisions only within ~1 ulp of a boundary).
void ExpectCleanRoundTrip(const sub::Subdivision& sub,
                          const std::vector<std::vector<uint8_t>>& packets,
                          const QueryFn& query,
                          const std::function<int(const Point&)>& locate,
                          uint64_t seed) {
  const auto frames = bcast::FramePackets(packets);
  Rng rng(seed);
  for (int q = 0; q < 200; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng, 1e-3);
    std::vector<int> read;
    auto raw = query(packets, false, p, &read);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_EQ(raw.value(), locate(p));
    auto framed = query(frames, true, p, nullptr);
    ASSERT_TRUE(framed.ok()) << framed.status().ToString();
    EXPECT_EQ(framed.value(), raw.value());
  }
}

/// A single bit flip in any packet the clean descent reads must surface
/// as kDataLoss through the CRC check (CRC-32 detects all 1-bit errors).
void ExpectSingleFlipDetected(const sub::Subdivision& sub,
                              const std::vector<std::vector<uint8_t>>& packets,
                              const QueryFn& query, uint64_t seed) {
  const auto frames = bcast::FramePackets(packets);
  Rng rng(seed);
  for (int q = 0; q < 100; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    std::vector<int> read;
    ASSERT_TRUE(query(frames, true, p, &read).ok());
    ASSERT_FALSE(read.empty());
    // Corrupt one packet on the clean read path.
    const int victim = read[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(read.size()) - 1))];
    auto mutated = frames;
    auto& frame = mutated[static_cast<size_t>(victim)];
    bcast::FlipBit(&frame, static_cast<size_t>(rng.UniformInt(
                               0, static_cast<int64_t>(frame.size()) * 8 - 1)));
    auto r = query(mutated, true, p, nullptr);
    // The descent may route away from the victim after an upstream reread,
    // but with a single fixed path it must fail — and only with kDataLoss.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss)
          << r.status().ToString();
    }
    // Re-query along the recorded path: the victim packet was on it, so a
    // decoder that claims success can only have done so by not touching
    // the corrupted bytes again — verify the frame itself is detected.
    EXPECT_EQ(bcast::VerifyFrame(frame).code(), StatusCode::kDataLoss);
  }
}

/// The fuzz loop proper: mutated packets must never crash or hang the
/// decoder, and the packets-read log stays within the decode budget.
void RunFuzz(const sub::Subdivision& sub,
             const std::vector<std::vector<uint8_t>>& packets,
             const QueryFn& query, uint64_t seed) {
  const auto frames = bcast::FramePackets(packets);
  const geom::BBox& a = sub.service_area();
  Rng rng(seed);
  for (int it = 0; it < kFuzzIterations; ++it) {
    const bool framed = (it % 2) == 0;
    auto mutated = framed ? frames : packets;
    if (it % 10 == 9 && mutated.size() > 1) {
      // Truncate the stream: dangling pointers must fail cleanly.
      mutated.resize(1 + static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(mutated.size()) - 2)));
    } else {
      const int flips = 1 + it % 8;
      for (int f = 0; f < flips; ++f) {
        auto& pkt = mutated[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(mutated.size()) - 1))];
        bcast::FlipBit(&pkt,
                       static_cast<size_t>(rng.UniformInt(
                           0, static_cast<int64_t>(pkt.size()) * 8 - 1)));
      }
    }
    const Point p{rng.Uniform(a.min_x, a.max_x),
                  rng.Uniform(a.min_y, a.max_y)};
    std::vector<int> read;
    auto r = query(mutated, framed, p, &read);
    if (r.ok()) {
      // Under corruption any region id is acceptable; it just has to be a
      // plain value.
      EXPECT_GE(r.value(), 0);
    }
    // Termination stayed within the decode budget: the read log cannot
    // exceed budget many packet entries per decoded node/shape.
    EXPECT_LE(read.size(),
              static_cast<size_t>(bcast::DecodeBudget(mutated.size())) *
                  (mutated.size() + 1));
  }
}

class FailsafeFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sub_ = new sub::Subdivision(test::RandomVoronoi(kRegions, kFixtureSeed));
  }
  static void TearDownTestSuite() {
    delete sub_;
    sub_ = nullptr;
  }
  static sub::Subdivision* sub_;
};

sub::Subdivision* FailsafeFuzzTest::sub_ = nullptr;

// --- D-tree ----------------------------------------------------------------

struct DTreeFixture {
  core::DTree tree;
  std::vector<std::vector<uint8_t>> packets;

  static DTreeFixture Make(const sub::Subdivision& sub) {
    core::DTree::Options o;
    o.packet_capacity = kCapacity;
    core::DTree t = core::DTree::Build(sub, o).value();
    auto pkts = core::SerializeDTree(t).value();
    return DTreeFixture{std::move(t), std::move(pkts)};
  }
  QueryFn query() const {
    const bool et = tree.options().early_termination;
    return [et](const std::vector<std::vector<uint8_t>>& pkts, bool framed,
                const Point& p, std::vector<int>* read) {
      return framed
                 ? core::QueryFromFramedPackets(pkts, kCapacity, et, p, read)
                 : core::QueryFromPackets(pkts, kCapacity, et, p, read);
    };
  }
};

TEST_F(FailsafeFuzzTest, DTreeCleanRoundTrip) {
  DTreeFixture f = DTreeFixture::Make(*sub_);
  ExpectCleanRoundTrip(*sub_, f.packets, f.query(),
                       [&](const Point& p) { return f.tree.Locate(p); }, 11);
}

TEST_F(FailsafeFuzzTest, DTreeSingleFlipDetected) {
  DTreeFixture f = DTreeFixture::Make(*sub_);
  ExpectSingleFlipDetected(*sub_, f.packets, f.query(), 12);
}

TEST_F(FailsafeFuzzTest, DTreeFuzz) {
  DTreeFixture f = DTreeFixture::Make(*sub_);
  RunFuzz(*sub_, f.packets, f.query(), 13);
}

// --- trian-tree (Kirkpatrick) ----------------------------------------------

struct TrianFixture {
  baselines::TrianTree tree;
  std::vector<std::vector<uint8_t>> packets;
  std::vector<std::pair<int, size_t>> roots;

  static TrianFixture Make(const sub::Subdivision& sub) {
    baselines::TrianTree::Options o;
    o.packet_capacity = kCapacity;
    baselines::TrianTree t = baselines::TrianTree::Build(sub, o).value();
    auto pkts = t.SerializePackets().value();
    auto roots = t.RootLocations();
    return TrianFixture{std::move(t), std::move(pkts), std::move(roots)};
  }
  QueryFn query(int num_regions) const {
    return [r = roots, num_regions](
               const std::vector<std::vector<uint8_t>>& pkts, bool framed,
               const Point& p, std::vector<int>* read) {
      return baselines::TrianTree::QueryFromPackets(pkts, kCapacity, framed,
                                                    r, num_regions, p, read);
    };
  }
};

TEST_F(FailsafeFuzzTest, TrianTreeCleanRoundTrip) {
  TrianFixture f = TrianFixture::Make(*sub_);
  ExpectCleanRoundTrip(*sub_, f.packets, f.query(sub_->NumRegions()),
                       [&](const Point& p) { return f.tree.Locate(p); }, 21);
}

TEST_F(FailsafeFuzzTest, TrianTreeSingleFlipDetected) {
  TrianFixture f = TrianFixture::Make(*sub_);
  ExpectSingleFlipDetected(*sub_, f.packets, f.query(sub_->NumRegions()), 22);
}

TEST_F(FailsafeFuzzTest, TrianTreeFuzz) {
  TrianFixture f = TrianFixture::Make(*sub_);
  RunFuzz(*sub_, f.packets, f.query(sub_->NumRegions()), 23);
}

// --- trap-tree ---------------------------------------------------------------

struct TrapFixture {
  baselines::TrapMap map;
  std::vector<std::vector<uint8_t>> packets;

  static TrapFixture Make(const sub::Subdivision& sub) {
    baselines::TrapMap::Options o;
    o.packet_capacity = kCapacity;
    baselines::TrapMap m = baselines::TrapMap::Build(sub, o).value();
    auto pkts = m.SerializePackets().value();
    return TrapFixture{std::move(m), std::move(pkts)};
  }
  static QueryFn query(int num_regions) {
    return [num_regions](const std::vector<std::vector<uint8_t>>& pkts,
                         bool framed, const Point& p,
                         std::vector<int>* read) {
      return baselines::TrapMap::QueryFromPackets(pkts, kCapacity, framed,
                                                  num_regions, p, read);
    };
  }
};

TEST_F(FailsafeFuzzTest, TrapTreeCleanRoundTrip) {
  TrapFixture f = TrapFixture::Make(*sub_);
  ExpectCleanRoundTrip(*sub_, f.packets, f.query(sub_->NumRegions()),
                       [&](const Point& p) { return f.map.Locate(p); }, 31);
}

TEST_F(FailsafeFuzzTest, TrapTreeSingleFlipDetected) {
  TrapFixture f = TrapFixture::Make(*sub_);
  ExpectSingleFlipDetected(*sub_, f.packets, f.query(sub_->NumRegions()), 32);
}

TEST_F(FailsafeFuzzTest, TrapTreeFuzz) {
  TrapFixture f = TrapFixture::Make(*sub_);
  RunFuzz(*sub_, f.packets, f.query(sub_->NumRegions()), 33);
}

// --- r*-tree -----------------------------------------------------------------

struct RStarFixture {
  baselines::RStarTree tree;
  std::vector<std::vector<uint8_t>> packets;

  static RStarFixture Make(const sub::Subdivision& sub) {
    baselines::RStarTree::Options o;
    o.packet_capacity = kCapacity;
    baselines::RStarTree t = baselines::RStarTree::Build(sub, o).value();
    auto pkts = t.SerializePackets().value();
    return RStarFixture{std::move(t), std::move(pkts)};
  }
  static QueryFn query(int num_regions) {
    return [num_regions](const std::vector<std::vector<uint8_t>>& pkts,
                         bool framed, const Point& p,
                         std::vector<int>* read) {
      return baselines::RStarTree::QueryFromPackets(pkts, kCapacity, framed,
                                                    num_regions, p, read);
    };
  }
};

TEST_F(FailsafeFuzzTest, RStarCleanRoundTrip) {
  RStarFixture f = RStarFixture::Make(*sub_);
  ExpectCleanRoundTrip(*sub_, f.packets, f.query(sub_->NumRegions()),
                       [&](const Point& p) { return f.tree.Locate(p); }, 41);
}

TEST_F(FailsafeFuzzTest, RStarSingleFlipDetected) {
  RStarFixture f = RStarFixture::Make(*sub_);
  ExpectSingleFlipDetected(*sub_, f.packets, f.query(sub_->NumRegions()), 42);
}

TEST_F(FailsafeFuzzTest, RStarFuzz) {
  RStarFixture f = RStarFixture::Make(*sub_);
  RunFuzz(*sub_, f.packets, f.query(sub_->NumRegions()), 43);
}

// --- data buckets ------------------------------------------------------------

TEST(DataBucketFrameTest, RoundTripAndDetection) {
  const auto bucket = bcast::MakeDataBucketPackets(/*region=*/7,
                                                  /*size=*/1000, kCapacity);
  ASSERT_EQ(bucket.size(), 8u);  // ceil(1000 / 128)
  for (size_t j = 0; j < 1000; ++j) {
    EXPECT_EQ(bucket[j / kCapacity][j % kCapacity],
              bcast::ExpectedDataBucketByte(7, j));
  }
  // Padding is zeroed.
  for (size_t j = 1000; j < 8 * kCapacity; ++j) {
    EXPECT_EQ(bucket[j / kCapacity][j % kCapacity], 0);
  }
  auto frames = bcast::FramePackets(bucket);
  for (const auto& fr : frames) EXPECT_OK(bcast::VerifyFrame(fr));
  auto restored = bcast::UnframePackets(frames);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), bucket);
  // Any single-bit error in payload or trailer is caught.
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    auto mutated = frames[static_cast<size_t>(t) % frames.size()];
    bcast::FlipBit(&mutated,
                   static_cast<size_t>(rng.UniformInt(
                       0, static_cast<int64_t>(mutated.size()) * 8 - 1)));
    EXPECT_EQ(bcast::VerifyFrame(mutated).code(), StatusCode::kDataLoss);
  }
}

TEST(DataBucketFrameTest, LinearScanIdentifiesTheBucket) {
  // A fallback-scanning client recognizes its bucket purely from the
  // (CRC-verified) content: only region r's bucket matches r's expected
  // bytes, so the linear scan answers exactly like the indexed path.
  constexpr int kBuckets = 16;
  std::vector<std::vector<std::vector<uint8_t>>> channel;
  for (int r = 0; r < kBuckets; ++r) {
    channel.push_back(
        bcast::FramePackets(bcast::MakeDataBucketPackets(r, 512, kCapacity)));
  }
  for (int want = 0; want < kBuckets; ++want) {
    int found = -1;
    for (int r = 0; r < kBuckets; ++r) {
      auto payload = bcast::UnframePackets(channel[static_cast<size_t>(r)]);
      ASSERT_TRUE(payload.ok());
      bool match = true;
      for (size_t j = 0; j < 512 && match; ++j) {
        match = payload.value()[j / kCapacity][j % kCapacity] ==
                bcast::ExpectedDataBucketByte(want, j);
      }
      if (match) {
        found = r;
        break;
      }
    }
    EXPECT_EQ(found, want);
  }
}

// --- multi-bit flips ---------------------------------------------------------

TEST(FrameMultiBitFlipTest, ExhaustiveDoubleFlipsNeverEscapeTheCrc) {
  // CRC-32 (poly 0x04C11DB7) has Hamming distance >= 4 at every frame
  // length this codebase broadcasts, so every 2-bit error must surface as
  // kDataLoss — zero escapes, counted exactly. Exhaustive over a small
  // frame keeps the pair count tractable (~46k for a 32-byte payload).
  std::vector<uint8_t> payload(32);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const auto frames = bcast::FramePackets({payload}, /*epoch=*/9);
  const auto& frame = frames[0];
  const size_t bits = frame.size() * 8;
  int escapes = 0;
  for (size_t a = 0; a + 1 < bits; ++a) {
    auto mutated = frame;
    bcast::FlipBit(&mutated, a);
    for (size_t b = a + 1; b < bits; ++b) {
      bcast::FlipBit(&mutated, b);
      if (bcast::VerifyFrame(mutated).code() != StatusCode::kDataLoss) {
        ++escapes;
      }
      bcast::FlipBit(&mutated, b);  // restore to the single-flip base
    }
  }
  EXPECT_EQ(escapes, 0);
}

TEST(FrameMultiBitFlipTest, RandomDoubleAndTripleFlipsNeverEscapeTheCrc) {
  // Randomized 2- and 3-bit flips on a broadcast-sized frame (kCapacity
  // payload + trailer): still within the CRC's Hamming-distance-4
  // guarantee, so every mutation must be caught — and caught as
  // corruption (kDataLoss), never misread as a version skew, even when
  // the flips land in the epoch stamp and an epoch check is armed.
  std::vector<uint8_t> payload(kCapacity);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const auto frames = bcast::FramePackets({payload}, /*epoch=*/9);
  const auto& frame = frames[0];
  const int64_t bits = static_cast<int64_t>(frame.size()) * 8;
  Rng rng(91);
  int escapes = 0;
  for (int it = 0; it < kFuzzIterations; ++it) {
    const int flips = 2 + it % 2;
    int64_t picked[3] = {-1, -1, -1};
    int chosen = 0;
    while (chosen < flips) {
      const int64_t bit = rng.UniformInt(0, bits - 1);
      bool dup = false;
      for (int j = 0; j < chosen; ++j) dup = dup || picked[j] == bit;
      if (!dup) picked[chosen++] = bit;
    }
    auto mutated = frame;
    for (int j = 0; j < flips; ++j) {
      bcast::FlipBit(&mutated, static_cast<size_t>(picked[j]));
    }
    if (bcast::VerifyFrame(mutated).code() != StatusCode::kDataLoss) {
      ++escapes;
    }
    auto r = bcast::UnframePackets({mutated}, /*expected_epoch=*/9);
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss)
        << "flips=" << flips << " it=" << it;
  }
  EXPECT_EQ(escapes, 0);
}

// --- zero-payload frames -----------------------------------------------------

TEST(ZeroPayloadFrameTest, TrailerOnlyFramesRoundTripButCarryNoBytes) {
  const std::vector<std::vector<uint8_t>> packets(3);
  auto frames = bcast::FramePackets(packets, /*epoch=*/4);
  ASSERT_EQ(frames.size(), 3u);
  for (const auto& f : frames) {
    ASSERT_EQ(f.size(), bcast::kFrameOverheadBytes);
    EXPECT_OK(bcast::VerifyFrame(f));
    EXPECT_EQ(bcast::FrameEpoch(f), 4);
  }
  auto restored = bcast::UnframePackets(frames, /*expected_epoch=*/4);
  ASSERT_TRUE(restored.ok());
  for (const auto& p : restored.value()) EXPECT_TRUE(p.empty());
}

TEST(ZeroPayloadFrameTest, PacketReaderRejectsZeroCapacityOnFirstRead) {
  // Regression: a reader over a zero-payload stream must fail with
  // kDataLoss on the very first read instead of walking into the
  // epoch/CRC trailer and handing the decoder framing bytes as payload.
  const std::vector<std::vector<uint8_t>> packets(2);
  const auto frames = bcast::FramePackets(packets, /*epoch=*/9);
  for (int capacity : {0, -1, -128}) {
    std::vector<int> read;
    bcast::PacketReader reader(frames, capacity, /*framed=*/true,
                               /*packet=*/0, /*offset=*/0, &read,
                               /*expected_epoch=*/9);
    uint16_t v = 0xbeef;
    Status s = reader.ReadU16(&v);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
    EXPECT_TRUE(read.empty());  // no packet was ever entered
    EXPECT_EQ(v, 0xbeef);       // the output was never written
  }
  // Unframed zero-capacity streams are rejected identically.
  std::vector<int> read;
  bcast::PacketReader raw(packets, /*capacity=*/0, /*framed=*/false,
                          /*packet=*/0, /*offset=*/0, &read);
  uint16_t v = 0;
  EXPECT_EQ(raw.ReadU16(&v).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(read.empty());
}

}  // namespace
}  // namespace dtree
