#include <set>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/air_index.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::baselines {
namespace {

using geom::Point;

TEST(RStarTest, RejectsBadInput) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 1);
  RStarTree::Options o;
  o.packet_capacity = 16;  // cannot hold two entries
  EXPECT_FALSE(RStarTree::Build(sub, o).ok());
}

TEST(RStarTest, NodeCapacityFollowsPacket) {
  const sub::Subdivision sub = test::RandomVoronoi(60, 2);
  for (int capacity : {64, 256, 2048}) {
    RStarTree::Options o;
    o.packet_capacity = capacity;
    auto tree_r = RStarTree::Build(sub, o);
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    EXPECT_EQ(tree_r.value().max_entries(), (capacity - 2) / 18);
    EXPECT_GE(tree_r.value().min_entries(), 1);
    EXPECT_LE(tree_r.value().min_entries(),
              tree_r.value().max_entries() / 2);
  }
}

TEST(RStarTest, LocateMatchesOracle) {
  const sub::Subdivision sub = test::RandomVoronoi(120, 3);
  RStarTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = RStarTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(4);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(RStarTest, TracesAreForwardOnly) {
  const sub::Subdivision sub = test::ClusteredVoronoi(80, 5);
  RStarTree::Options o;
  o.packet_capacity = 256;
  auto tree_r = RStarTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(6);
  for (int q = 0; q < 500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    auto trace_r = tree_r.value().Probe(p);
    ASSERT_TRUE(trace_r.ok());
    EXPECT_OK(bcast::ValidateTrace(trace_r.value(),
                                   tree_r.value().NumIndexPackets(),
                                   sub.NumRegions(),
                                   /*require_forward=*/true));
  }
}

TEST(RStarTest, AdjacentRegionsOverlap) {
  // The paper's core argument against the R*-tree: tiling regions force
  // leaf MBRs to overlap.
  const sub::Subdivision sub = test::RandomVoronoi(100, 7);
  RStarTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = RStarTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  EXPECT_GT(tree_r.value().LeafOverlapArea(), 0.0);
}

TEST(TrapMapTest, RejectsBadInput) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 8);
  TrapMap::Options o;
  o.packet_capacity = 16;
  EXPECT_FALSE(TrapMap::Build(sub, o).ok());
}

TEST(TrapMapTest, InvariantsOnUniform) {
  const sub::Subdivision sub = test::RandomVoronoi(80, 9);
  TrapMap::Options o;
  o.packet_capacity = 128;
  auto map_r = TrapMap::Build(sub, o);
  ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
  EXPECT_OK(map_r.value().CheckInvariants(3000, 10));
  // O(n) expected size: alive trapezoids <= ~3n + 4, DAG not absurd.
  EXPECT_LE(map_r.value().num_alive_trapezoids(),
            3 * map_r.value().num_segments() + 8);
}

TEST(TrapMapTest, TracesAreForwardOnly) {
  // The creation-order broadcast layout guarantees forward-only pointers
  // even though the search structure is a DAG.
  const sub::Subdivision sub = test::RandomVoronoi(90, 31);
  TrapMap::Options o;
  o.packet_capacity = 128;
  auto map_r = TrapMap::Build(sub, o);
  ASSERT_TRUE(map_r.ok());
  Rng rng(32);
  for (int q = 0; q < 500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    auto trace_r = map_r.value().Probe(p);
    ASSERT_TRUE(trace_r.ok());
    EXPECT_OK(bcast::ValidateTrace(trace_r.value(),
                                   map_r.value().NumIndexPackets(),
                                   sub.NumRegions(),
                                   /*require_forward=*/true));
  }
}

TEST(TrianTreeTest, TracesAreForwardOnly) {
  // Level-descending broadcast order: every DAG edge goes to a strictly
  // lower level, so descents never rewind the channel.
  const sub::Subdivision sub = test::RandomVoronoi(90, 33);
  TrianTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = TrianTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(34);
  for (int q = 0; q < 500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    auto trace_r = tree_r.value().Probe(p);
    ASSERT_TRUE(trace_r.ok());
    EXPECT_OK(bcast::ValidateTrace(trace_r.value(),
                                   tree_r.value().NumIndexPackets(),
                                   sub.NumRegions(),
                                   /*require_forward=*/true));
  }
}

TEST(TrapMapTest, LocateMatchesOracle) {
  const sub::Subdivision sub = test::RandomVoronoi(120, 11);
  TrapMap::Options o;
  o.packet_capacity = 128;
  auto map_r = TrapMap::Build(sub, o);
  ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(12);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(map_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(TrapMapTest, LocateMatchesOracleClustered) {
  // Clustered Voronoi stresses elongated cells and near-vertical edges.
  const sub::Subdivision sub = test::ClusteredVoronoi(150, 13);
  TrapMap::Options o;
  o.packet_capacity = 64;
  auto map_r = TrapMap::Build(sub, o);
  ASSERT_TRUE(map_r.ok()) << map_r.status().ToString();
  EXPECT_OK(map_r.value().CheckInvariants(3000, 14));
  const sub::PointLocator oracle(sub);
  Rng rng(15);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(map_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(TrapMapTest, HandlesVerticalAndCollinearSegments) {
  // A 3x3 grid subdivision: every interior edge is axis-aligned, the
  // border edges are collinear chains — the degenerate cases the
  // lexicographic shear must handle.
  std::vector<geom::Polygon> cells;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      const double x = gx * 10.0, y = gy * 10.0;
      cells.push_back(geom::Polygon(
          {{x, y}, {x + 10, y}, {x + 10, y + 10}, {x, y + 10}}));
    }
  }
  auto sub_r = sub::Subdivision::FromPolygons({0, 0, 30, 30}, cells);
  ASSERT_TRUE(sub_r.ok());
  TrapMap::Options o;
  o.packet_capacity = 64;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    o.seed = seed;
    auto map_r = TrapMap::Build(sub_r.value(), o);
    ASSERT_TRUE(map_r.ok()) << "seed " << seed << ": "
                            << map_r.status().ToString();
    EXPECT_OK(map_r.value().CheckInvariants(2000, seed));
    const sub::PointLocator oracle(sub_r.value());
    Rng rng(16 + seed);
    for (int q = 0; q < 500; ++q) {
      const Point p = test::UnambiguousQueryPoint(sub_r.value(), &rng, 0.01);
      EXPECT_EQ(map_r.value().Locate(p), oracle.Locate(p)) << "seed " << seed;
    }
  }
}

TEST(TrianTreeTest, RejectsBadInput) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 17);
  TrianTree::Options o;
  o.packet_capacity = 32;
  EXPECT_FALSE(TrianTree::Build(sub, o).ok());
  o.packet_capacity = 128;
  o.t_min = 0;
  EXPECT_FALSE(TrianTree::Build(sub, o).ok());
}

TEST(TrianTreeTest, HierarchyShrinks) {
  const sub::Subdivision sub = test::RandomVoronoi(60, 18);
  TrianTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = TrianTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const TrianTree& tree = tree_r.value();
  EXPECT_GT(tree.num_levels(), 1);
  // The top level is a small sequential-scan list, far below the base
  // triangle count.
  EXPECT_LT(tree.num_root_triangles(), tree.num_triangles() / 4);
}

TEST(TrianTreeTest, LocateMatchesOracle) {
  const sub::Subdivision sub = test::RandomVoronoi(100, 19);
  TrianTree::Options o;
  o.packet_capacity = 128;
  auto tree_r = TrianTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(20);
  for (int q = 0; q < 2000; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

TEST(TrianTreeTest, LocateMatchesOracleClustered) {
  const sub::Subdivision sub = test::ClusteredVoronoi(120, 21);
  TrianTree::Options o;
  o.packet_capacity = 64;
  auto tree_r = TrianTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(22);
  for (int q = 0; q < 1500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

/// The keystone property: all four index structures answer every query
/// identically (ground truth included), across sizes and packet sizes.
class AllIndexAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AllIndexAgreementTest, AllStructuresAgree) {
  const auto [n, capacity, clustered] = GetParam();
  const sub::Subdivision sub = clustered
                                   ? test::ClusteredVoronoi(n, 500 + n)
                                   : test::RandomVoronoi(n, 300 + n);
  const sub::PointLocator oracle(sub);

  core::DTree::Options dopt;
  dopt.packet_capacity = capacity;
  auto dtree = core::DTree::Build(sub, dopt);
  ASSERT_TRUE(dtree.ok()) << dtree.status().ToString();

  RStarTree::Options ropt;
  ropt.packet_capacity = capacity;
  auto rstar = RStarTree::Build(sub, ropt);
  ASSERT_TRUE(rstar.ok()) << rstar.status().ToString();

  TrapMap::Options topt;
  topt.packet_capacity = capacity;
  auto trap = TrapMap::Build(sub, topt);
  ASSERT_TRUE(trap.ok()) << trap.status().ToString();

  TrianTree::Options kopt;
  kopt.packet_capacity = capacity;
  auto trian = TrianTree::Build(sub, kopt);
  ASSERT_TRUE(trian.ok()) << trian.status().ToString();

  Rng rng(600 + n);
  for (int q = 0; q < 400; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    const int expect = oracle.Locate(p);
    EXPECT_EQ(dtree.value().Locate(p), expect) << "d-tree";
    EXPECT_EQ(rstar.value().Locate(p), expect) << "r*-tree";
    EXPECT_EQ(trap.value().Locate(p), expect) << "trap-tree";
    EXPECT_EQ(trian.value().Locate(p), expect) << "trian-tree";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllIndexAgreementTest,
    ::testing::Combine(::testing::Values(5, 20, 60, 120),
                       ::testing::Values(64, 512),
                       ::testing::Bool()));

}  // namespace
}  // namespace dtree::baselines
